package graph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"goldilocks/internal/resources"
)

func TestNewEmpty(t *testing.T) {
	g := New(5)
	if g.NumVertices() != 5 {
		t.Fatalf("NumVertices = %d, want 5", g.NumVertices())
	}
	if g.NumEdges() != 0 {
		t.Fatalf("NumEdges = %d, want 0", g.NumEdges())
	}
	if !g.TotalVertexWeight().IsZero() {
		t.Fatal("new graph should have zero total weight")
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) should panic")
		}
	}()
	New(-1)
}

func TestAddVertex(t *testing.T) {
	g := New(0)
	id := g.AddVertex(resources.New(1, 2, 3))
	if id != 0 || g.NumVertices() != 1 {
		t.Fatalf("AddVertex returned %d, n=%d", id, g.NumVertices())
	}
	if g.VertexWeight(0) != resources.New(1, 2, 3) {
		t.Fatalf("weight = %v", g.VertexWeight(0))
	}
}

func TestAddEdgeAccumulates(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 2)
	g.AddEdge(1, 0, 3) // same undirected edge, reversed order
	if got := g.EdgeWeight(0, 1); got != 5 {
		t.Errorf("EdgeWeight(0,1) = %v, want 5 (accumulated)", got)
	}
	if got := g.EdgeWeight(1, 0); got != 5 {
		t.Errorf("EdgeWeight(1,0) = %v, want 5 (symmetric)", got)
	}
	if g.NumEdges() != 1 {
		t.Errorf("NumEdges = %d, want 1", g.NumEdges())
	}
}

func TestSelfLoopIgnored(t *testing.T) {
	g := New(2)
	g.AddEdge(1, 1, 10)
	if g.NumEdges() != 0 {
		t.Error("self loops must be ignored")
	}
	if g.EdgeWeight(1, 1) != 0 {
		t.Error("self loop weight must be 0")
	}
}

func TestNegativeEdges(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1, -4) // replica anti-affinity
	if g.EdgeWeight(0, 1) != -4 {
		t.Errorf("negative edge weight lost: %v", g.EdgeWeight(0, 1))
	}
	if g.TotalEdgeWeight() != -4 {
		t.Errorf("TotalEdgeWeight = %v, want -4", g.TotalEdgeWeight())
	}
	if g.TotalPositiveEdgeWeight() != 0 {
		t.Errorf("TotalPositiveEdgeWeight = %v, want 0", g.TotalPositiveEdgeWeight())
	}
}

func TestDegreeAndWeightedDegree(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 2, 2)
	g.AddEdge(0, 3, 3)
	if g.Degree(0) != 3 {
		t.Errorf("Degree(0) = %d, want 3", g.Degree(0))
	}
	if g.WeightedDegree(0) != 6 {
		t.Errorf("WeightedDegree(0) = %v, want 6", g.WeightedDegree(0))
	}
	if g.Degree(1) != 1 {
		t.Errorf("Degree(1) = %d, want 1", g.Degree(1))
	}
}

func TestCutWeight(t *testing.T) {
	// Square: 0-1, 1-2, 2-3, 3-0 each weight 1; diagonal 0-2 weight 5.
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 1)
	g.AddEdge(3, 0, 1)
	g.AddEdge(0, 2, 5)
	// Partition {0,1} vs {2,3}: cut = edges 1-2, 3-0, 0-2 = 1+1+5 = 7.
	if got := g.CutWeight([]int{0, 0, 1, 1}); got != 7 {
		t.Errorf("CutWeight = %v, want 7", got)
	}
	// Partition {0,2} vs {1,3}: cut = 1+1+1+1 = 4 (diagonal inside).
	if got := g.CutWeight([]int{0, 1, 0, 1}); got != 4 {
		t.Errorf("CutWeight = %v, want 4", got)
	}
	// All on one side: zero cut.
	if got := g.CutWeight([]int{0, 0, 0, 0}); got != 0 {
		t.Errorf("CutWeight one-sided = %v, want 0", got)
	}
}

func TestCutWeightK(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 2)
	g.AddEdge(1, 2, 3)
	g.AddEdge(0, 2, 4)
	if got := g.CutWeightK([]int{0, 1, 2}); got != 9 {
		t.Errorf("3-way cut = %v, want 9", got)
	}
	if got := g.CutWeightK([]int{7, 7, 9}); got != 7 {
		t.Errorf("cut = %v, want 7 (edges 1-2 and 0-2)", got)
	}
}

func TestSubgraph(t *testing.T) {
	g := New(5)
	for i := 0; i < 5; i++ {
		g.SetVertexWeight(i, resources.New(float64(i), 0, 0))
	}
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 2)
	g.AddEdge(2, 3, 3)
	g.AddEdge(3, 4, 4)
	g.SetLabel(2, "c2")

	sub, toOrig := g.Subgraph([]int{1, 2, 3})
	if sub.NumVertices() != 3 {
		t.Fatalf("subgraph vertices = %d", sub.NumVertices())
	}
	if sub.NumEdges() != 2 {
		t.Fatalf("subgraph edges = %d, want 2 (1-2 and 2-3)", sub.NumEdges())
	}
	if toOrig[0] != 1 || toOrig[1] != 2 || toOrig[2] != 3 {
		t.Fatalf("mapping = %v", toOrig)
	}
	if sub.VertexWeight(1) != resources.New(2, 0, 0) {
		t.Errorf("subgraph vertex weight not carried: %v", sub.VertexWeight(1))
	}
	if sub.EdgeWeight(0, 1) != 2 || sub.EdgeWeight(1, 2) != 3 {
		t.Errorf("subgraph edge weights wrong")
	}
	if sub.Label(1) != "c2" {
		t.Errorf("label not carried: %q", sub.Label(1))
	}
}

func TestConnectedComponents(t *testing.T) {
	g := New(6)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(3, 4, 1)
	// vertex 5 isolated
	comps := g.ConnectedComponents()
	if len(comps) != 3 {
		t.Fatalf("components = %d, want 3", len(comps))
	}
	want := [][]int{{0, 1, 2}, {3, 4}, {5}}
	for i := range want {
		if len(comps[i]) != len(want[i]) {
			t.Fatalf("component %d = %v, want %v", i, comps[i], want[i])
		}
		for j := range want[i] {
			if comps[i][j] != want[i][j] {
				t.Fatalf("component %d = %v, want %v", i, comps[i], want[i])
			}
		}
	}
}

func TestClone(t *testing.T) {
	g := New(3)
	g.SetVertexWeight(0, resources.New(1, 1, 1))
	g.AddEdge(0, 1, 2)
	g.SetLabel(0, "a")
	c := g.Clone()
	c.AddEdge(1, 2, 9)
	c.SetVertexWeight(0, resources.New(5, 5, 5))
	if g.HasEdge(1, 2) {
		t.Error("mutating clone leaked into original (edges)")
	}
	if g.VertexWeight(0) != resources.New(1, 1, 1) {
		t.Error("mutating clone leaked into original (weights)")
	}
	if c.Label(0) != "a" {
		t.Error("labels not cloned")
	}
}

func randomGraph(rng *rand.Rand, n, edges int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		g.SetVertexWeight(i, resources.New(rng.Float64()*100, rng.Float64()*100, rng.Float64()*100))
	}
	for i := 0; i < edges; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		g.AddEdge(u, v, float64(rng.Intn(10)+1))
	}
	return g
}

func TestPropertyCutBoundedByPositiveWeight(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(30) + 2
		g := randomGraph(rng, n, n*2)
		side := make([]int, n)
		for i := range side {
			side[i] = rng.Intn(2)
		}
		cut := g.CutWeight(side)
		return cut >= 0 && cut <= g.TotalPositiveEdgeWeight()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPropertyComponentsPartitionVertices(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(40) + 1
		g := randomGraph(rng, n, rng.Intn(n*2))
		seen := make(map[int]bool)
		for _, comp := range g.ConnectedComponents() {
			for _, v := range comp {
				if seen[v] {
					return false // vertex in two components
				}
				seen[v] = true
			}
		}
		return len(seen) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPropertySubgraphPreservesInducedCut(t *testing.T) {
	// The total edge weight of a subgraph equals the original total minus
	// the cut between the subset and its complement minus edges fully in
	// the complement.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(20) + 4
		g := randomGraph(rng, n, n*3)
		var inSet []int
		side := make([]int, n)
		for v := 0; v < n; v++ {
			if rng.Intn(2) == 0 {
				inSet = append(inSet, v)
				side[v] = 1
			}
		}
		sub, _ := g.Subgraph(inSet)
		comp := make([]int, 0, n)
		for v := 0; v < n; v++ {
			if side[v] == 0 {
				comp = append(comp, v)
			}
		}
		subComp, _ := g.Subgraph(comp)
		total := sub.TotalEdgeWeight() + subComp.TotalEdgeWeight() + g.CutWeight(side)
		return abs(total-g.TotalEdgeWeight()) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
