package graph

import "goldilocks/internal/resources"

// Builder assembles a Graph from a stream of AddEdge calls in O(V+E) total
// work, independent of vertex degree. Graph.AddEdge keeps adjacency rows
// deduplicated with a linear scan per insertion, which is perfect for the
// small container graphs of the paper's testbed figures but quadratic in
// degree — a 1M-vertex power-law mesh whose hubs collect thousands of
// neighbors spends almost all of its construction time re-scanning hub
// rows. Builder instead buffers the directed halves and routes them in one
// counting-scatter pass at Build time, with a marker-array first-seen
// dedup-accumulate per row.
//
// Equivalence contract: Build produces *exactly* the Graph an identical
// sequence of Graph.AddEdge calls would have produced — same neighbor
// order (first-occurrence append order), same accumulated weights (summed
// in insertion order, so the float bits match), same ignored self-loops.
// TestBuilderMatchesAddEdge pins this on randomized inputs; the partition
// pipeline's bit-identity guarantees therefore extend to Builder-built
// graphs unchanged.
type Builder struct {
	g      *Graph
	halves []builderHalf
}

// builderHalf is one directed half of an undirected edge awaiting routing.
type builderHalf struct {
	row, col int
	w        float64
}

// NewBuilder returns a builder for a graph with n isolated zero-weight
// vertices. sizeHint, when positive, pre-sizes the half-edge buffer for
// that many AddEdge calls.
func NewBuilder(n, sizeHint int) *Builder {
	b := &Builder{g: New(n)}
	if sizeHint > 0 {
		b.halves = make([]builderHalf, 0, 2*sizeHint)
	}
	return b
}

// SetVertexWeight replaces the weight of vertex v.
func (b *Builder) SetVertexWeight(v int, w resources.Vector) {
	b.g.vwgt[v] = w
}

// SetLabel attaches a human-readable label to vertex v.
func (b *Builder) SetLabel(v int, label string) { b.g.SetLabel(v, label) }

// AddEdge records weight w on the undirected edge {u, v}, with
// Graph.AddEdge's exact semantics: repeated pairs accumulate at the first
// occurrence, self-loops are ignored.
func (b *Builder) AddEdge(u, v int, w float64) {
	if u == v {
		return
	}
	b.halves = append(b.halves, builderHalf{row: u, col: v, w: w}, builderHalf{row: v, col: u, w: w})
}

// Build routes the recorded halves into adjacency rows and returns the
// graph. The builder must not be reused afterwards.
func (b *Builder) Build() *Graph {
	g := b.g
	n := len(g.vwgt)
	halves := b.halves

	// Pass 1: per-row counts → provisional write cursors (a stable counting
	// scatter, so each row receives its halves in insertion order).
	pos := make([]int, n+1)
	for i := range halves {
		pos[halves[i].row+1]++
	}
	for v := 0; v < n; v++ {
		pos[v+1] += pos[v]
	}
	scratch := make([]Edge, len(halves))
	rowStartOf := make([]int, n)
	copy(rowStartOf, pos[:n])
	for i := range halves {
		h := &halves[i]
		p := pos[h.row]
		pos[h.row]++
		scratch[p] = Edge{To: h.col, Weight: h.w}
	}

	// Pass 2: per-row first-seen dedup-accumulate — the exact semantics of
	// addHalf's linear-scan accumulation, in the same insertion order.
	// marker[col] is the output index of col within the current row,
	// restored to −1 before moving on.
	marker := make([]int, n)
	for i := range marker {
		marker[i] = -1
	}
	for v := 0; v < n; v++ {
		lo := rowStartOf[v]
		hi := pos[v] // pass 1 left pos[v] at the end of row v
		out := lo
		for k := lo; k < hi; k++ {
			e := scratch[k]
			if m := marker[e.To]; m >= 0 {
				scratch[m].Weight += e.Weight
				continue
			}
			marker[e.To] = out
			scratch[out] = e
			out++
		}
		if out > lo {
			row := make([]Edge, out-lo)
			copy(row, scratch[lo:out])
			g.adj[v] = row
		}
		for k := lo; k < out; k++ {
			marker[scratch[k].To] = -1
		}
	}
	b.halves = nil
	return g
}
