package graph

import (
	"fmt"
	"math"

	"goldilocks/internal/resources"
)

// CSR is the flat compressed-sparse-row view of a Graph: the METIS-style
// memory layout the partitioner's hot path runs on. Row v's adjacency is
// Adj[XAdj[v]:XAdj[v+1]] with parallel edge weights in AdjW, and VWgt holds
// the vertex weights as one contiguous block. Neighbor order within a row is
// exactly the Graph's adjacency-list order, so algorithms that iterate
// neighbors (and sum floating-point weights) behave bit-identically on
// either representation.
//
// The struct is designed for reuse: AppendCSR overwrites the slices in
// place, reallocating only when capacity is too small, so a pooled CSR
// reaches steady state with zero allocations per conversion.
type CSR struct {
	// XAdj has NumVertices()+1 entries; XAdj[0] is always 0.
	XAdj []int32
	// Adj holds both directed halves of every undirected edge (2·NumEdges
	// entries).
	Adj []int32
	// AdjW[i] is the weight of the half-edge Adj[i]. Negative entries are
	// anti-affinity edges.
	AdjW []float64
	// VWgt[v] is the multi-dimensional weight of vertex v.
	VWgt []resources.Vector
}

// NumVertices returns the number of vertices in the CSR view.
func (c *CSR) NumVertices() int {
	if len(c.XAdj) == 0 {
		return 0
	}
	return len(c.XAdj) - 1
}

// AppendCSR flattens the graph into c, reusing c's backing arrays when they
// are large enough. Vertex and half-edge counts must fit in int32 — the
// dense-id partitioning domain — or the conversion panics.
func (g *Graph) AppendCSR(c *CSR) {
	n := g.NumVertices()
	half := 0
	for _, es := range g.adj {
		half += len(es)
	}
	if int64(n) > math.MaxInt32 || int64(half) > math.MaxInt32 {
		panic(fmt.Sprintf("graph: CSR export overflows int32 ids (%d vertices, %d half-edges)", n, half))
	}
	c.XAdj = grow32(c.XAdj, n+1)
	c.Adj = grow32(c.Adj, half)
	c.AdjW = growF64(c.AdjW, half)
	c.VWgt = growVec(c.VWgt, n)

	copy(c.VWgt, g.vwgt)
	pos := int32(0)
	for v := 0; v < n; v++ {
		c.XAdj[v] = pos
		for _, e := range g.adj[v] {
			c.Adj[pos] = int32(e.To)
			c.AdjW[pos] = e.Weight
			pos++
		}
	}
	c.XAdj[n] = pos
}

func grow32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growF64(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growVec(s []resources.Vector, n int) []resources.Vector {
	if cap(s) < n {
		return make([]resources.Vector, n)
	}
	return s[:n]
}
