package topology

import (
	"fmt"

	"goldilocks/internal/power"
	"goldilocks/internal/resources"
)

// Config parameterizes the generic hierarchical builders.
type Config struct {
	// ServerCapacity is the homogeneous per-server resource capacity.
	ServerCapacity resources.Vector
	// ServerModel is the per-server power model.
	ServerModel power.ServerModel
	// ServerLinkMbps is the NIC speed (the server's outbound link).
	ServerLinkMbps float64
}

// NewLeafSpine builds the paper's testbed network (§V): `leaves` leaf
// switches each connecting `serversPerLeaf` servers, fully meshed to
// `spines` spine switches. Rack outbound capacity is spines × uplinkMbps
// (one uplink per spine per leaf).
func NewLeafSpine(leaves, serversPerLeaf, spines int, uplinkMbps float64, leafSwitch, spineSwitch power.SwitchModel, cfg Config) (*Topology, error) {
	if leaves <= 0 || serversPerLeaf <= 0 || spines <= 0 {
		return nil, fmt.Errorf("topology: invalid leaf-spine shape %d×%d/%d", leaves, serversPerLeaf, spines)
	}
	t := &Topology{Name: fmt.Sprintf("leaf-spine-%dx%d", leaves, serversPerLeaf)}
	root := &Node{ID: 0, Level: LevelRoot, ServerID: -1,
		Switches: []SwitchGroup{{Model: spineSwitch, Count: spines}}}
	nextID := 1
	for l := 0; l < leaves; l++ {
		rack := &Node{
			ID: nextID, Level: LevelRack, Parent: root, ServerID: -1,
			Uplink:   &Link{CapacityMbps: float64(spines) * uplinkMbps},
			Switches: []SwitchGroup{{Model: leafSwitch, Count: 1}},
		}
		nextID++
		for s := 0; s < serversPerLeaf; s++ {
			sid := len(t.ServerNode)
			leaf := &Node{
				ID: nextID, Level: LevelServer, Parent: rack, ServerID: sid,
				Uplink:    &Link{CapacityMbps: cfg.ServerLinkMbps},
				ServerIDs: []int{sid},
			}
			nextID++
			rack.Children = append(rack.Children, leaf)
			rack.ServerIDs = append(rack.ServerIDs, sid)
			t.ServerNode = append(t.ServerNode, leaf)
			t.Capacity = append(t.Capacity, cfg.ServerCapacity)
			t.Server = append(t.Server, cfg.ServerModel)
			t.nodes = append(t.nodes, leaf)
		}
		root.Children = append(root.Children, rack)
		root.ServerIDs = append(root.ServerIDs, rack.ServerIDs...)
		t.nodes = append(t.nodes, rack)
	}
	t.nodes = append(t.nodes, root)
	t.Root = root
	return t, nil
}

// NewTestbed builds the exact 16-server testbed of §V: 8 leaf switches
// (VLANs on HPE 3800s) with 2 servers each, 2 spines, 1G server NICs.
func NewTestbed() *Topology {
	cfg := Config{
		// 32-core AMD Opteron 6272, 64 GB, 1G NIC.
		ServerCapacity: resources.New(3200, 64*1024, 1000),
		ServerModel:    power.TestbedOpteron,
		ServerLinkMbps: 1000,
	}
	t, err := NewLeafSpine(8, 2, 2, 1000, power.TestbedHPE3800, power.TestbedHPE3800, cfg)
	if err != nil {
		panic(err) // shape constants are valid by construction
	}
	t.Name = "testbed-16"
	return t
}

// NewFatTree builds a k-ary fat-tree (k even): k pods of k/2 racks with k/2
// servers each (k³/4 servers), 1 edge switch per rack, k/2 aggregation
// switches per pod, (k/2)² core switches — 5k²/4 switches total. All links
// run at cfg.ServerLinkMbps, giving full bisection bandwidth: rack outbound
// = k/2 links, pod outbound = (k/2)² links.
func NewFatTree(k int, edgeSwitch, aggSwitch, coreSwitch power.SwitchModel, cfg Config) (*Topology, error) {
	if k < 2 || k%2 != 0 {
		return nil, fmt.Errorf("topology: fat-tree arity %d must be even and ≥ 2", k)
	}
	half := k / 2
	t := &Topology{Name: fmt.Sprintf("fat-tree-%d", k)}
	root := &Node{ID: 0, Level: LevelRoot, ServerID: -1,
		Switches: []SwitchGroup{{Model: coreSwitch, Count: half * half}}}
	nextID := 1
	for p := 0; p < k; p++ {
		pod := &Node{
			ID: nextID, Level: LevelPod, Parent: root, ServerID: -1,
			Uplink:   &Link{CapacityMbps: float64(half*half) * cfg.ServerLinkMbps},
			Switches: []SwitchGroup{{Model: aggSwitch, Count: half}},
		}
		nextID++
		for r := 0; r < half; r++ {
			rack := &Node{
				ID: nextID, Level: LevelRack, Parent: pod, ServerID: -1,
				Uplink:   &Link{CapacityMbps: float64(half) * cfg.ServerLinkMbps},
				Switches: []SwitchGroup{{Model: edgeSwitch, Count: 1}},
			}
			nextID++
			for s := 0; s < half; s++ {
				sid := len(t.ServerNode)
				leaf := &Node{
					ID: nextID, Level: LevelServer, Parent: rack, ServerID: sid,
					Uplink:    &Link{CapacityMbps: cfg.ServerLinkMbps},
					ServerIDs: []int{sid},
				}
				nextID++
				rack.Children = append(rack.Children, leaf)
				rack.ServerIDs = append(rack.ServerIDs, sid)
				t.ServerNode = append(t.ServerNode, leaf)
				t.Capacity = append(t.Capacity, cfg.ServerCapacity)
				t.Server = append(t.Server, cfg.ServerModel)
				t.nodes = append(t.nodes, leaf)
			}
			pod.Children = append(pod.Children, rack)
			pod.ServerIDs = append(pod.ServerIDs, rack.ServerIDs...)
			t.nodes = append(t.nodes, rack)
		}
		root.Children = append(root.Children, pod)
		root.ServerIDs = append(root.ServerIDs, pod.ServerIDs...)
		t.nodes = append(t.nodes, pod)
	}
	t.nodes = append(t.nodes, root)
	t.Root = root
	return t, nil
}

// NewSimulationFatTree builds the §VI-B large-scale simulation network: a
// 28-ary fat tree with 5488 Dell R940 servers and 980 HPE Altoline 6940
// switches, 10G server links.
func NewSimulationFatTree() *Topology {
	cfg := Config{
		ServerCapacity: resources.New(7200, 6*1024*1024, 10000), // 72 cores, 6 TB max R940, 10G
		ServerModel:    power.DellR940,
		ServerLinkMbps: 10000,
	}
	t, err := NewFatTree(28, power.Altoline6940, power.Altoline6940, power.Altoline6940, cfg)
	if err != nil {
		panic(err) // 28 is even: cannot fail
	}
	t.Name = "sim-fat-tree-28"
	return t
}
