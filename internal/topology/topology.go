// Package topology models the data center networks Goldilocks places
// containers on. The paper's algorithms view the DCN as a hierarchy of
// substructures — server ⊂ rack ⊂ pod ⊂ data center — and the package
// represents exactly that: a tree of Nodes whose leaves are servers, where
// every non-root node owns an aggregate *outbound link* summarizing the
// bisection bandwidth between its subtree and the rest of the network
// (the quantity Eqs. 4–5 reserve against).
//
// Builders cover the paper's networks: the 16-server leaf-spine testbed
// (§V), k-ary fat-trees (§VI-B uses k=28: 5488 servers, 980 switches), and
// the five Table I data center specifications used for the Fig. 3 power
// breakdown. Link and switch failures make a topology asymmetric (§IV).
package topology

import (
	"fmt"

	"goldilocks/internal/power"
	"goldilocks/internal/resources"
)

// Level identifies a node's height in the hierarchy.
type Level int

// Node levels, bottom-up.
const (
	LevelServer Level = iota
	LevelRack
	LevelPod
	LevelRoot
)

// String names the level.
func (l Level) String() string {
	switch l {
	case LevelServer:
		return "server"
	case LevelRack:
		return "rack"
	case LevelPod:
		return "pod"
	case LevelRoot:
		return "root"
	default:
		return fmt.Sprintf("level(%d)", int(l))
	}
}

// Link is the aggregate outbound connectivity of a subtree: the bisection
// bandwidth between the subtree and the remainder of the data center.
// Reserved tracks Virtual Cluster bandwidth reservations (§IV).
type Link struct {
	CapacityMbps float64
	ReservedMbps float64
	// nominalMbps snapshots the healthy design capacity the first time a
	// failure setter degrades the link, so RecoverUplink restores the
	// exact pre-failure value (repeated fractional failures compound on
	// CapacityMbps and would otherwise be irreversible). Zero means the
	// link has never been degraded.
	nominalMbps float64
}

// Nominal returns the link's healthy design capacity: the pre-failure
// capacity when the link has been degraded, CapacityMbps otherwise.
func (l *Link) Nominal() float64 {
	if l.nominalMbps > 0 {
		return l.nominalMbps
	}
	return l.CapacityMbps
}

// Residual returns the unreserved bandwidth.
func (l *Link) Residual() float64 {
	r := l.CapacityMbps - l.ReservedMbps
	if r < 0 {
		return 0
	}
	return r
}

// Reserve consumes mbps of residual bandwidth; it reports whether the
// reservation fit.
func (l *Link) Reserve(mbps float64) bool {
	if mbps < 0 || mbps > l.Residual()+1e-9 {
		return false
	}
	l.ReservedMbps += mbps
	return true
}

// Release returns mbps of reserved bandwidth.
func (l *Link) Release(mbps float64) {
	l.ReservedMbps -= mbps
	if l.ReservedMbps < 0 {
		l.ReservedMbps = 0
	}
}

// SwitchGroup is a set of identical switches attached to a node (e.g. the
// k/2 aggregation switches of a fat-tree pod).
type SwitchGroup struct {
	Model power.SwitchModel
	Count int
}

// Node is one vertex of the hierarchy tree. Servers are leaves
// (Level == LevelServer); the root has a nil Uplink.
type Node struct {
	ID       int
	Level    Level
	Parent   *Node
	Children []*Node
	// ServerIDs lists all servers underneath this node, ascending.
	ServerIDs []int
	// Uplink is the aggregate outbound link of this subtree; nil at root.
	Uplink *Link
	// Switches attached at this node (ToR at racks, aggregation at pods,
	// core/spine at root).
	Switches []SwitchGroup
	// ServerID is the server index for leaves, -1 otherwise.
	ServerID int
}

// IsServer reports whether the node is a server leaf.
func (n *Node) IsServer() bool { return n.Level == LevelServer }

// Topology is a complete data center network.
type Topology struct {
	Name string
	Root *Node
	// ServerNode maps server id to its leaf node.
	ServerNode []*Node
	// Capacity is the per-server resource capacity (heterogeneous servers
	// simply differ here).
	Capacity []resources.Vector
	// Server is the per-server power model.
	Server []power.ServerModel
	// nodes lists every node, servers first, then racks, pods, root.
	nodes []*Node
	// failedServer flags servers taken down by FailServer; nil until the
	// first failure touches the topology.
	failedServer []bool
	// nominalCapacity snapshots every server's healthy capacity vector the
	// first time a failure or throttle mutates Capacity, so RecoverServer
	// restores the exact pre-failure value.
	nominalCapacity []resources.Vector
}

// NumServers returns the number of servers.
func (t *Topology) NumServers() int { return len(t.ServerNode) }

// Nodes returns every node in the topology. The slice is owned by the
// topology and must not be modified.
func (t *Topology) Nodes() []*Node { return t.nodes }

// NumSwitches counts physical switches across all nodes.
func (t *Topology) NumSwitches() int {
	total := 0
	for _, n := range t.nodes {
		for _, sg := range n.Switches {
			total += sg.Count
		}
	}
	return total
}

// HopDistance returns the number of links on the shortest path between two
// servers: 0 to itself, 2 within a rack, 4 within a pod, 6 across pods in a
// three-tier network (twice the level of the lowest common ancestor).
func (t *Topology) HopDistance(a, b int) int {
	if a == b {
		return 0
	}
	na, nb := t.ServerNode[a], t.ServerNode[b]
	// Walk both up to equal depth, then in lockstep to the LCA.
	hops := 0
	for depth(na) > depth(nb) {
		na = na.Parent
		hops++
	}
	for depth(nb) > depth(na) {
		nb = nb.Parent
		hops++
	}
	for na != nb {
		na, nb = na.Parent, nb.Parent
		hops += 2
	}
	return hops
}

func depth(n *Node) int {
	d := 0
	for n.Parent != nil {
		n = n.Parent
		d++
	}
	return d
}

// LCA returns the lowest common ancestor node of two servers.
func (t *Topology) LCA(a, b int) *Node {
	na, nb := t.ServerNode[a], t.ServerNode[b]
	for depth(na) > depth(nb) {
		na = na.Parent
	}
	for depth(nb) > depth(na) {
		nb = nb.Parent
	}
	for na != nb {
		na, nb = na.Parent, nb.Parent
	}
	return na
}

// PathLinks returns the aggregate links traversed by traffic between two
// servers: the uplinks of every subtree strictly below the LCA on both
// branches. A flow between servers in the same rack crosses both server
// NIC links; across racks it additionally crosses the rack uplinks, etc.
func (t *Topology) PathLinks(a, b int) []*Link {
	if a == b {
		return nil
	}
	lca := t.LCA(a, b)
	var links []*Link
	for n := t.ServerNode[a]; n != lca; n = n.Parent {
		links = append(links, n.Uplink)
	}
	for n := t.ServerNode[b]; n != lca; n = n.Parent {
		links = append(links, n.Uplink)
	}
	return links
}

// SubtreesAtLevel returns all nodes of the given level in left-to-right
// order.
func (t *Topology) SubtreesAtLevel(l Level) []*Node {
	var out []*Node
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.Level == l {
			out = append(out, n)
			return
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(t.Root)
	return out
}

// TotalCapacity sums server capacities.
func (t *Topology) TotalCapacity() resources.Vector {
	return resources.Sum(t.Capacity)
}

// AverageCapacity returns the mean per-server capacity over the surviving
// servers; the asymmetric placement algorithm partitions against this
// before fitting heterogeneous servers individually (§IV-A). Failed
// servers are excluded — averaging in their zeroed capacity would shrink
// the partition groups far below what the survivors can actually host.
func (t *Topology) AverageCapacity() resources.Vector {
	alive := t.NumServers() - t.NumFailedServers()
	if alive == 0 {
		return resources.Vector{}
	}
	return t.TotalCapacity().Scale(1 / float64(alive))
}

// FailUplinkFraction degrades the outbound capacity of a node by the given
// fraction (0 = no failure, 1 = fully cut), making the topology asymmetric.
// It returns an error for the root (which has no uplink) or an out-of-range
// fraction. Repeated failures compound; RecoverUplink undoes them all at
// once.
func (t *Topology) FailUplinkFraction(n *Node, fraction float64) error {
	if n.Uplink == nil {
		return fmt.Errorf("topology: node %d has no uplink", n.ID)
	}
	if fraction < 0 || fraction > 1 {
		return fmt.Errorf("topology: invalid failure fraction %v", fraction)
	}
	if n.Uplink.nominalMbps == 0 {
		n.Uplink.nominalMbps = n.Uplink.CapacityMbps
	}
	n.Uplink.CapacityMbps *= 1 - fraction
	return nil
}

// FailUplink cuts a node's outbound link entirely — a ToR/aggregation
// switch loss or a severed cable isolates the subtree from the rest of the
// fabric.
func (t *Topology) FailUplink(n *Node) error {
	return t.FailUplinkFraction(n, 1)
}

// RecoverUplink restores a previously failed or degraded uplink to its
// exact pre-failure capacity. Recovering a healthy uplink is a no-op; the
// root (which has no uplink) is an error, mirroring the failure setters.
func (t *Topology) RecoverUplink(n *Node) error {
	if n.Uplink == nil {
		return fmt.Errorf("topology: node %d has no uplink", n.ID)
	}
	if n.Uplink.nominalMbps > 0 {
		n.Uplink.CapacityMbps = n.Uplink.nominalMbps
	}
	return nil
}

// ensureFaultState lazily allocates the failure bookkeeping so topologies
// that never see a fault pay nothing.
func (t *Topology) ensureFaultState() {
	if t.failedServer == nil {
		t.failedServer = make([]bool, t.NumServers())
	}
	if t.nominalCapacity == nil {
		t.nominalCapacity = append([]resources.Vector(nil), t.Capacity...)
	}
}

// FailServer takes a server down: its capacity drops to zero (no policy
// can place anything there) and its NIC uplink is cut. Failing an already
// failed server is a no-op, so correlated fault schedules compose.
func (t *Topology) FailServer(id int) error {
	if id < 0 || id >= t.NumServers() {
		return fmt.Errorf("topology: server %d outside [0, %d)", id, t.NumServers())
	}
	t.ensureFaultState()
	if t.failedServer[id] {
		return nil
	}
	t.failedServer[id] = true
	t.Capacity[id] = resources.Vector{}
	return t.FailUplink(t.ServerNode[id])
}

// RecoverServer brings a server back: capacity and NIC link return to
// their exact pre-failure values. It also clears any ThrottleServer
// degradation, and is a no-op on a healthy, unthrottled server.
func (t *Topology) RecoverServer(id int) error {
	if id < 0 || id >= t.NumServers() {
		return fmt.Errorf("topology: server %d outside [0, %d)", id, t.NumServers())
	}
	if t.failedServer == nil && t.nominalCapacity == nil {
		return nil // never failed anything
	}
	t.ensureFaultState()
	t.failedServer[id] = false
	t.Capacity[id] = t.nominalCapacity[id]
	return t.RecoverUplink(t.ServerNode[id])
}

// ThrottleServer models a straggler: the server stays up but delivers only
// `factor` of its healthy capacity (thermal throttling, a failing disk, a
// noisy neighbor on shared infrastructure). factor must be in (0, 1];
// RecoverServer (or ThrottleServer with factor 1) restores full capacity.
// Throttling a failed server is an error — it has no capacity to scale.
func (t *Topology) ThrottleServer(id int, factor float64) error {
	if id < 0 || id >= t.NumServers() {
		return fmt.Errorf("topology: server %d outside [0, %d)", id, t.NumServers())
	}
	if factor <= 0 || factor > 1 {
		return fmt.Errorf("topology: throttle factor %v outside (0, 1]", factor)
	}
	t.ensureFaultState()
	if t.failedServer[id] {
		return fmt.Errorf("topology: server %d is failed; recover it before throttling", id)
	}
	t.Capacity[id] = t.nominalCapacity[id].Scale(factor)
	return nil
}

// ServerFailed reports whether FailServer took the server down.
func (t *Topology) ServerFailed(id int) bool {
	return t.failedServer != nil && id >= 0 && id < len(t.failedServer) && t.failedServer[id]
}

// NumFailedServers counts servers currently down.
func (t *Topology) NumFailedServers() int {
	n := 0
	for _, f := range t.failedServer {
		if f {
			n++
		}
	}
	return n
}

// FailedServers lists the down servers in ascending id order.
func (t *Topology) FailedServers() []int {
	var out []int
	for id, f := range t.failedServer {
		if f {
			out = append(out, id)
		}
	}
	return out
}

// NodeByID returns the node with the given ID, or nil. IDs are assigned by
// the builders and are stable for a given topology shape, which lets fault
// schedules name link/rack targets by value.
func (t *Topology) NodeByID(id int) *Node {
	for _, n := range t.nodes {
		if n.ID == id {
			return n
		}
	}
	return nil
}

// IsSymmetric reports whether all subtrees at every level have equal
// outbound capacity and all servers share one capacity vector.
func (t *Topology) IsSymmetric() bool {
	byLevel := make(map[Level]float64)
	seen := make(map[Level]bool)
	for _, n := range t.nodes {
		if n.Uplink == nil {
			continue
		}
		if !seen[n.Level] {
			byLevel[n.Level] = n.Uplink.CapacityMbps
			seen[n.Level] = true
		} else if byLevel[n.Level] != n.Uplink.CapacityMbps {
			return false
		}
	}
	for _, c := range t.Capacity[1:] {
		if c != t.Capacity[0] {
			return false
		}
	}
	return true
}

// Clone deep-copies the topology (links, capacities); useful for what-if
// failure experiments.
func (t *Topology) Clone() *Topology {
	c := &Topology{
		Name:       t.Name,
		Capacity:   append([]resources.Vector(nil), t.Capacity...),
		Server:     append([]power.ServerModel(nil), t.Server...),
		ServerNode: make([]*Node, len(t.ServerNode)),
	}
	if t.failedServer != nil {
		c.failedServer = append([]bool(nil), t.failedServer...)
	}
	if t.nominalCapacity != nil {
		c.nominalCapacity = append([]resources.Vector(nil), t.nominalCapacity...)
	}
	var cloneNode func(n *Node, parent *Node) *Node
	cloneNode = func(n *Node, parent *Node) *Node {
		nn := &Node{
			ID:        n.ID,
			Level:     n.Level,
			Parent:    parent,
			ServerIDs: append([]int(nil), n.ServerIDs...),
			Switches:  append([]SwitchGroup(nil), n.Switches...),
			ServerID:  n.ServerID,
		}
		if n.Uplink != nil {
			l := *n.Uplink
			nn.Uplink = &l
		}
		for _, ch := range n.Children {
			nn.Children = append(nn.Children, cloneNode(ch, nn))
		}
		c.nodes = append(c.nodes, nn)
		if nn.IsServer() {
			c.ServerNode[nn.ServerID] = nn
		}
		return nn
	}
	c.Root = cloneNode(t.Root, nil)
	return c
}
