// Package topology models the data center networks Goldilocks places
// containers on. The paper's algorithms view the DCN as a hierarchy of
// substructures — server ⊂ rack ⊂ pod ⊂ data center — and the package
// represents exactly that: a tree of Nodes whose leaves are servers, where
// every non-root node owns an aggregate *outbound link* summarizing the
// bisection bandwidth between its subtree and the rest of the network
// (the quantity Eqs. 4–5 reserve against).
//
// Builders cover the paper's networks: the 16-server leaf-spine testbed
// (§V), k-ary fat-trees (§VI-B uses k=28: 5488 servers, 980 switches), and
// the five Table I data center specifications used for the Fig. 3 power
// breakdown. Link and switch failures make a topology asymmetric (§IV).
package topology

import (
	"fmt"

	"goldilocks/internal/power"
	"goldilocks/internal/resources"
)

// Level identifies a node's height in the hierarchy.
type Level int

// Node levels, bottom-up.
const (
	LevelServer Level = iota
	LevelRack
	LevelPod
	LevelRoot
)

// String names the level.
func (l Level) String() string {
	switch l {
	case LevelServer:
		return "server"
	case LevelRack:
		return "rack"
	case LevelPod:
		return "pod"
	case LevelRoot:
		return "root"
	default:
		return fmt.Sprintf("level(%d)", int(l))
	}
}

// Link is the aggregate outbound connectivity of a subtree: the bisection
// bandwidth between the subtree and the remainder of the data center.
// Reserved tracks Virtual Cluster bandwidth reservations (§IV).
type Link struct {
	CapacityMbps float64
	ReservedMbps float64
}

// Residual returns the unreserved bandwidth.
func (l *Link) Residual() float64 {
	r := l.CapacityMbps - l.ReservedMbps
	if r < 0 {
		return 0
	}
	return r
}

// Reserve consumes mbps of residual bandwidth; it reports whether the
// reservation fit.
func (l *Link) Reserve(mbps float64) bool {
	if mbps < 0 || mbps > l.Residual()+1e-9 {
		return false
	}
	l.ReservedMbps += mbps
	return true
}

// Release returns mbps of reserved bandwidth.
func (l *Link) Release(mbps float64) {
	l.ReservedMbps -= mbps
	if l.ReservedMbps < 0 {
		l.ReservedMbps = 0
	}
}

// SwitchGroup is a set of identical switches attached to a node (e.g. the
// k/2 aggregation switches of a fat-tree pod).
type SwitchGroup struct {
	Model power.SwitchModel
	Count int
}

// Node is one vertex of the hierarchy tree. Servers are leaves
// (Level == LevelServer); the root has a nil Uplink.
type Node struct {
	ID       int
	Level    Level
	Parent   *Node
	Children []*Node
	// ServerIDs lists all servers underneath this node, ascending.
	ServerIDs []int
	// Uplink is the aggregate outbound link of this subtree; nil at root.
	Uplink *Link
	// Switches attached at this node (ToR at racks, aggregation at pods,
	// core/spine at root).
	Switches []SwitchGroup
	// ServerID is the server index for leaves, -1 otherwise.
	ServerID int
}

// IsServer reports whether the node is a server leaf.
func (n *Node) IsServer() bool { return n.Level == LevelServer }

// Topology is a complete data center network.
type Topology struct {
	Name string
	Root *Node
	// ServerNode maps server id to its leaf node.
	ServerNode []*Node
	// Capacity is the per-server resource capacity (heterogeneous servers
	// simply differ here).
	Capacity []resources.Vector
	// Server is the per-server power model.
	Server []power.ServerModel
	// nodes lists every node, servers first, then racks, pods, root.
	nodes []*Node
}

// NumServers returns the number of servers.
func (t *Topology) NumServers() int { return len(t.ServerNode) }

// Nodes returns every node in the topology. The slice is owned by the
// topology and must not be modified.
func (t *Topology) Nodes() []*Node { return t.nodes }

// NumSwitches counts physical switches across all nodes.
func (t *Topology) NumSwitches() int {
	total := 0
	for _, n := range t.nodes {
		for _, sg := range n.Switches {
			total += sg.Count
		}
	}
	return total
}

// HopDistance returns the number of links on the shortest path between two
// servers: 0 to itself, 2 within a rack, 4 within a pod, 6 across pods in a
// three-tier network (twice the level of the lowest common ancestor).
func (t *Topology) HopDistance(a, b int) int {
	if a == b {
		return 0
	}
	na, nb := t.ServerNode[a], t.ServerNode[b]
	// Walk both up to equal depth, then in lockstep to the LCA.
	hops := 0
	for depth(na) > depth(nb) {
		na = na.Parent
		hops++
	}
	for depth(nb) > depth(na) {
		nb = nb.Parent
		hops++
	}
	for na != nb {
		na, nb = na.Parent, nb.Parent
		hops += 2
	}
	return hops
}

func depth(n *Node) int {
	d := 0
	for n.Parent != nil {
		n = n.Parent
		d++
	}
	return d
}

// LCA returns the lowest common ancestor node of two servers.
func (t *Topology) LCA(a, b int) *Node {
	na, nb := t.ServerNode[a], t.ServerNode[b]
	for depth(na) > depth(nb) {
		na = na.Parent
	}
	for depth(nb) > depth(na) {
		nb = nb.Parent
	}
	for na != nb {
		na, nb = na.Parent, nb.Parent
	}
	return na
}

// PathLinks returns the aggregate links traversed by traffic between two
// servers: the uplinks of every subtree strictly below the LCA on both
// branches. A flow between servers in the same rack crosses both server
// NIC links; across racks it additionally crosses the rack uplinks, etc.
func (t *Topology) PathLinks(a, b int) []*Link {
	if a == b {
		return nil
	}
	lca := t.LCA(a, b)
	var links []*Link
	for n := t.ServerNode[a]; n != lca; n = n.Parent {
		links = append(links, n.Uplink)
	}
	for n := t.ServerNode[b]; n != lca; n = n.Parent {
		links = append(links, n.Uplink)
	}
	return links
}

// SubtreesAtLevel returns all nodes of the given level in left-to-right
// order.
func (t *Topology) SubtreesAtLevel(l Level) []*Node {
	var out []*Node
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.Level == l {
			out = append(out, n)
			return
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(t.Root)
	return out
}

// TotalCapacity sums server capacities.
func (t *Topology) TotalCapacity() resources.Vector {
	return resources.Sum(t.Capacity)
}

// AverageCapacity returns the mean per-server capacity; the asymmetric
// placement algorithm partitions against this before fitting heterogeneous
// servers individually (§IV-A).
func (t *Topology) AverageCapacity() resources.Vector {
	n := t.NumServers()
	if n == 0 {
		return resources.Vector{}
	}
	return t.TotalCapacity().Scale(1 / float64(n))
}

// FailUplinkFraction degrades the outbound capacity of a node by the given
// fraction (0 = no failure, 1 = fully cut), making the topology asymmetric.
// It returns an error for the root (which has no uplink) or an out-of-range
// fraction.
func (t *Topology) FailUplinkFraction(n *Node, fraction float64) error {
	if n.Uplink == nil {
		return fmt.Errorf("topology: node %d has no uplink", n.ID)
	}
	if fraction < 0 || fraction > 1 {
		return fmt.Errorf("topology: invalid failure fraction %v", fraction)
	}
	n.Uplink.CapacityMbps *= 1 - fraction
	return nil
}

// IsSymmetric reports whether all subtrees at every level have equal
// outbound capacity and all servers share one capacity vector.
func (t *Topology) IsSymmetric() bool {
	byLevel := make(map[Level]float64)
	seen := make(map[Level]bool)
	for _, n := range t.nodes {
		if n.Uplink == nil {
			continue
		}
		if !seen[n.Level] {
			byLevel[n.Level] = n.Uplink.CapacityMbps
			seen[n.Level] = true
		} else if byLevel[n.Level] != n.Uplink.CapacityMbps {
			return false
		}
	}
	for _, c := range t.Capacity[1:] {
		if c != t.Capacity[0] {
			return false
		}
	}
	return true
}

// Clone deep-copies the topology (links, capacities); useful for what-if
// failure experiments.
func (t *Topology) Clone() *Topology {
	c := &Topology{
		Name:       t.Name,
		Capacity:   append([]resources.Vector(nil), t.Capacity...),
		Server:     append([]power.ServerModel(nil), t.Server...),
		ServerNode: make([]*Node, len(t.ServerNode)),
	}
	var cloneNode func(n *Node, parent *Node) *Node
	cloneNode = func(n *Node, parent *Node) *Node {
		nn := &Node{
			ID:        n.ID,
			Level:     n.Level,
			Parent:    parent,
			ServerIDs: append([]int(nil), n.ServerIDs...),
			Switches:  append([]SwitchGroup(nil), n.Switches...),
			ServerID:  n.ServerID,
		}
		if n.Uplink != nil {
			l := *n.Uplink
			nn.Uplink = &l
		}
		for _, ch := range n.Children {
			nn.Children = append(nn.Children, cloneNode(ch, nn))
		}
		c.nodes = append(c.nodes, nn)
		if nn.IsServer() {
			c.ServerNode[nn.ServerID] = nn
		}
		return nn
	}
	c.Root = cloneNode(t.Root, nil)
	return c
}
