package topology

import (
	"sort"
	"testing"

	"goldilocks/internal/partition"
	"goldilocks/internal/power"
	"goldilocks/internal/resources"
)

func TestCapacityGraphShape(t *testing.T) {
	tp, err := NewFatTree(4, power.Wedge, power.Wedge, power.Wedge, Config{
		ServerCapacity: resources.New(2400, 65536, 1000),
		ServerModel:    power.Dell2018,
		ServerLinkMbps: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	g, err := tp.CapacityGraph()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 16 {
		t.Fatalf("vertices = %d", g.NumVertices())
	}
	if g.NumEdges() != 16*15/2 {
		t.Fatalf("edges = %d, want complete graph", g.NumEdges())
	}
	// Vertex weight = server capacity (Fig. 4(b)).
	if g.VertexWeight(0) != resources.New(2400, 65536, 1000) {
		t.Fatalf("vertex weight = %v", g.VertexWeight(0))
	}
	// Edge weight = hop distance: same rack 2, same pod 4, cross pod 6.
	if g.EdgeWeight(0, 1) != 2 || g.EdgeWeight(0, 2) != 4 || g.EdgeWeight(0, 4) != 6 {
		t.Fatalf("edge weights = %v/%v/%v", g.EdgeWeight(0, 1), g.EdgeWeight(0, 2), g.EdgeWeight(0, 4))
	}
}

func TestCapacityGraphGuard(t *testing.T) {
	tp := NewSimulationFatTree() // 5488 servers
	if _, err := tp.CapacityGraph(); err == nil {
		t.Fatal("5488-server complete graph must be rejected")
	}
}

func TestDiscoverSubstructuresRecoversRacks(t *testing.T) {
	tp, err := NewFatTree(4, power.Wedge, power.Wedge, power.Wedge, Config{
		ServerCapacity: resources.New(2400, 65536, 1000),
		ServerModel:    power.Dell2018,
		ServerLinkMbps: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	g, err := tp.CapacityGraph()
	if err != nil {
		t.Fatal(err)
	}
	groups := DiscoverSubstructures(g, 2, partition.DefaultOptions())
	if len(groups) != 8 {
		t.Fatalf("discovered %d substructures, want the 8 racks", len(groups))
	}
	// Each discovered group must be exactly one rack: servers {2k, 2k+1}.
	for _, grp := range groups {
		sorted := append([]int(nil), grp...)
		sort.Ints(sorted)
		if len(sorted) != 2 || sorted[1] != sorted[0]+1 || sorted[0]%2 != 0 {
			t.Fatalf("group %v is not a rack", grp)
		}
	}
}

func TestDiscoverSubstructuresPodLevel(t *testing.T) {
	tp, err := NewFatTree(4, power.Wedge, power.Wedge, power.Wedge, Config{
		ServerCapacity: resources.New(2400, 65536, 1000),
		ServerModel:    power.Dell2018,
		ServerLinkMbps: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	g, err := tp.CapacityGraph()
	if err != nil {
		t.Fatal(err)
	}
	groups := DiscoverSubstructures(g, 4, partition.DefaultOptions())
	if len(groups) != 4 {
		t.Fatalf("discovered %d substructures, want the 4 pods", len(groups))
	}
	for _, grp := range groups {
		sorted := append([]int(nil), grp...)
		sort.Ints(sorted)
		if len(sorted) != 4 || sorted[0]%4 != 0 || sorted[3] != sorted[0]+3 {
			t.Fatalf("group %v is not a pod", grp)
		}
	}
}

func TestDiscoverSubstructuresUniform(t *testing.T) {
	// A single rack (uniform pairwise distance) must not split below its
	// natural boundary even with targetSize 1... it stops at uniformity.
	tp, err := NewLeafSpine(1, 4, 1, 1000, power.Wedge, power.Wedge, Config{
		ServerCapacity: resources.New(100, 100, 100),
		ServerModel:    power.Dell2018,
		ServerLinkMbps: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	g, err := tp.CapacityGraph()
	if err != nil {
		t.Fatal(err)
	}
	groups := DiscoverSubstructures(g, 1, partition.DefaultOptions())
	if len(groups) != 1 || len(groups[0]) != 4 {
		t.Fatalf("uniform rack split into %v", groups)
	}
}
