package topology

import "goldilocks/internal/power"

// DCSpec is one row of Table I: the inventory of a published data center
// design with the Open Compute power models the paper matched to it. The
// Fig. 3 power-breakdown analysis works on these counts analytically (the
// paper: "results are obtained through mathematical analysis of bin
// packing") rather than instantiating hundred-thousand-server graphs.
type DCSpec struct {
	Name        string
	NumServers  int
	NumLinks    int
	Server      power.ServerModel
	ToRCount    int
	ToRModel    power.SwitchModel
	FabricCount int
	FabricModel power.SwitchModel
}

// NumSwitches returns the total switch count.
func (s DCSpec) NumSwitches() int { return s.ToRCount + s.FabricCount }

// ServerPowerAt returns the total server power with every server on at
// utilization u.
func (s DCSpec) ServerPowerAt(u float64) float64 {
	return float64(s.NumServers) * s.Server.Power(u)
}

// SwitchPowerFull returns total network power with every switch fully on.
func (s DCSpec) SwitchPowerFull() float64 {
	return float64(s.ToRCount)*s.ToRModel.MaxPower() +
		float64(s.FabricCount)*s.FabricModel.MaxPower()
}

// TotalPowerAt returns server + network power for the uniform baseline.
func (s DCSpec) TotalPowerAt(serverUtil float64) float64 {
	return s.ServerPowerAt(serverUtil) + s.SwitchPowerFull()
}

// TableI reproduces the five data center configurations of Table I.
var TableI = []DCSpec{
	{
		Name:       "Google",
		NumServers: 98304, NumLinks: 147456,
		Server:   power.Facebook1S,
		ToRCount: 2048, ToRModel: power.Altoline6940x2,
		FabricCount: 3584, FabricModel: power.Altoline6940x2,
	},
	{
		Name:       "Facebook",
		NumServers: 184320, NumLinks: 36864,
		Server:   power.Facebook1S,
		ToRCount: 4608, ToRModel: power.Wedge,
		FabricCount: 576, FabricModel: power.SixPack,
	},
	{
		Name:       "VL2(96)",
		NumServers: 46080, NumLinks: 9216,
		Server:   power.MicrosoftBlade,
		ToRCount: 2304, ToRModel: power.Wedge,
		FabricCount: 144, FabricModel: power.SixPack,
	},
	{
		Name:       "Fat-tree(32)",
		NumServers: 32768, NumLinks: 2048,
		Server:   power.MicrosoftBlade,
		ToRCount: 1280, ToRModel: power.Altoline6940,
		FabricCount: 0, FabricModel: power.Altoline6940,
	},
	{
		Name:       "Fat-tree(72)",
		NumServers: 93312, NumLinks: 10368,
		Server:   power.MicrosoftBlade,
		ToRCount: 6480, ToRModel: power.Altoline6920,
		FabricCount: 0, FabricModel: power.Altoline6920,
	},
}
