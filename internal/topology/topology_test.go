package topology

import (
	"math"
	"testing"
	"testing/quick"

	"goldilocks/internal/power"
	"goldilocks/internal/resources"
)

func testConfig() Config {
	return Config{
		ServerCapacity: resources.New(2400, 256*1024, 1000),
		ServerModel:    power.Dell2018,
		ServerLinkMbps: 1000,
	}
}

func TestLeafSpineShape(t *testing.T) {
	tp, err := NewLeafSpine(8, 2, 2, 1000, power.TestbedHPE3800, power.TestbedHPE3800, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if tp.NumServers() != 16 {
		t.Fatalf("servers = %d, want 16", tp.NumServers())
	}
	racks := tp.SubtreesAtLevel(LevelRack)
	if len(racks) != 8 {
		t.Fatalf("racks = %d, want 8", len(racks))
	}
	for _, r := range racks {
		if len(r.Children) != 2 {
			t.Fatalf("rack %d has %d servers", r.ID, len(r.Children))
		}
		if r.Uplink.CapacityMbps != 2000 {
			t.Fatalf("rack uplink = %v, want 2000 (2 spines × 1G)", r.Uplink.CapacityMbps)
		}
	}
	// 8 leaf + 2 spine switches.
	if got := tp.NumSwitches(); got != 10 {
		t.Fatalf("switches = %d, want 10", got)
	}
}

func TestLeafSpineInvalidShape(t *testing.T) {
	if _, err := NewLeafSpine(0, 2, 2, 1000, power.Wedge, power.Wedge, testConfig()); err == nil {
		t.Fatal("zero leaves must fail")
	}
}

func TestTestbedMatchesPaper(t *testing.T) {
	tb := NewTestbed()
	if tb.NumServers() != 16 {
		t.Fatalf("testbed servers = %d", tb.NumServers())
	}
	if cap := tb.Capacity[0]; cap != resources.New(3200, 65536, 1000) {
		t.Fatalf("testbed server capacity = %v", cap)
	}
	if !tb.IsSymmetric() {
		t.Fatal("fresh testbed must be symmetric")
	}
}

func TestFatTreeShape(t *testing.T) {
	tp, err := NewFatTree(4, power.Altoline6940, power.Altoline6940, power.Altoline6940, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if tp.NumServers() != 16 { // k³/4
		t.Fatalf("servers = %d, want 16", tp.NumServers())
	}
	if got := len(tp.SubtreesAtLevel(LevelPod)); got != 4 {
		t.Fatalf("pods = %d, want 4", got)
	}
	if got := len(tp.SubtreesAtLevel(LevelRack)); got != 8 {
		t.Fatalf("racks = %d, want 8", got)
	}
	// 5k²/4 = 20 switches.
	if got := tp.NumSwitches(); got != 20 {
		t.Fatalf("switches = %d, want 20", got)
	}
	// Rack outbound: k/2 × link = 2000; pod outbound: (k/2)² × link = 4000.
	rack := tp.SubtreesAtLevel(LevelRack)[0]
	if rack.Uplink.CapacityMbps != 2000 {
		t.Fatalf("rack uplink = %v", rack.Uplink.CapacityMbps)
	}
	pod := tp.SubtreesAtLevel(LevelPod)[0]
	if pod.Uplink.CapacityMbps != 4000 {
		t.Fatalf("pod uplink = %v", pod.Uplink.CapacityMbps)
	}
}

func TestFatTreeOddArityRejected(t *testing.T) {
	if _, err := NewFatTree(5, power.Wedge, power.Wedge, power.Wedge, testConfig()); err == nil {
		t.Fatal("odd arity must be rejected")
	}
	if _, err := NewFatTree(0, power.Wedge, power.Wedge, power.Wedge, testConfig()); err == nil {
		t.Fatal("zero arity must be rejected")
	}
}

func TestSimulationFatTreeMatchesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a 5488-server network")
	}
	tp := NewSimulationFatTree()
	if tp.NumServers() != 5488 {
		t.Fatalf("servers = %d, want 5488 (§VI-B)", tp.NumServers())
	}
	if got := tp.NumSwitches(); got != 980 {
		t.Fatalf("switches = %d, want 980 (§VI-B)", got)
	}
}

func TestHopDistance(t *testing.T) {
	tp, err := NewFatTree(4, power.Wedge, power.Wedge, power.Wedge, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Server layout: pod p, rack r, server s → id = p*4 + r*2 + s.
	tests := []struct {
		name string
		a, b int
		want int
	}{
		{"same server", 0, 0, 0},
		{"same rack", 0, 1, 2},
		{"same pod", 0, 2, 4},
		{"cross pod", 0, 4, 6},
		{"cross pod far", 3, 15, 6},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tp.HopDistance(tt.a, tt.b); got != tt.want {
				t.Errorf("HopDistance(%d,%d) = %d, want %d", tt.a, tt.b, got, tt.want)
			}
		})
	}
}

func TestHopDistanceSymmetric(t *testing.T) {
	tp, err := NewFatTree(4, power.Wedge, power.Wedge, power.Wedge, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b uint8) bool {
		x, y := int(a)%16, int(b)%16
		return tp.HopDistance(x, y) == tp.HopDistance(y, x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPathLinks(t *testing.T) {
	tp, err := NewFatTree(4, power.Wedge, power.Wedge, power.Wedge, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if links := tp.PathLinks(0, 0); links != nil {
		t.Fatal("self path must be empty")
	}
	// Same rack: both server NIC links only.
	if links := tp.PathLinks(0, 1); len(links) != 2 {
		t.Fatalf("same-rack path links = %d, want 2", len(links))
	}
	// Same pod: 2 NICs + 2 rack uplinks.
	if links := tp.PathLinks(0, 2); len(links) != 4 {
		t.Fatalf("same-pod path links = %d, want 4", len(links))
	}
	// Cross pod: 2 NICs + 2 rack + 2 pod uplinks.
	if links := tp.PathLinks(0, 4); len(links) != 6 {
		t.Fatalf("cross-pod path links = %d, want 6", len(links))
	}
}

func TestLinkReservation(t *testing.T) {
	l := &Link{CapacityMbps: 100}
	if !l.Reserve(60) {
		t.Fatal("reserve 60/100 must succeed")
	}
	if l.Residual() != 40 {
		t.Fatalf("residual = %v, want 40", l.Residual())
	}
	if l.Reserve(50) {
		t.Fatal("overcommit must fail")
	}
	if l.Reserve(-1) {
		t.Fatal("negative reservation must fail")
	}
	l.Release(30)
	if l.Residual() != 70 {
		t.Fatalf("residual after release = %v, want 70", l.Residual())
	}
	l.Release(1000)
	if l.ReservedMbps != 0 {
		t.Fatal("release must clamp at zero")
	}
}

func TestFailUplinkMakesAsymmetric(t *testing.T) {
	tp, err := NewFatTree(4, power.Wedge, power.Wedge, power.Wedge, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !tp.IsSymmetric() {
		t.Fatal("fresh fat-tree must be symmetric")
	}
	rack := tp.SubtreesAtLevel(LevelRack)[0]
	if err := tp.FailUplinkFraction(rack, 0.5); err != nil {
		t.Fatal(err)
	}
	if rack.Uplink.CapacityMbps != 1000 {
		t.Fatalf("degraded uplink = %v, want 1000", rack.Uplink.CapacityMbps)
	}
	if tp.IsSymmetric() {
		t.Fatal("after failure topology must be asymmetric")
	}
	if err := tp.FailUplinkFraction(tp.Root, 0.5); err == nil {
		t.Fatal("root has no uplink; must error")
	}
	if err := tp.FailUplinkFraction(rack, 2); err == nil {
		t.Fatal("fraction > 1 must error")
	}
}

func TestAverageCapacity(t *testing.T) {
	tp, err := NewFatTree(4, power.Wedge, power.Wedge, power.Wedge, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := tp.AverageCapacity(); got != testConfig().ServerCapacity {
		t.Fatalf("homogeneous average = %v", got)
	}
	// Heterogeneous: double one server's CPU.
	tp.Capacity[0] = tp.Capacity[0].Add(resources.New(2400, 0, 0))
	avg := tp.AverageCapacity()
	want := testConfig().ServerCapacity[resources.CPU] + 2400/16.0
	if math.Abs(avg[resources.CPU]-want) > 1e-9 {
		t.Fatalf("heterogeneous average CPU = %v, want %v", avg[resources.CPU], want)
	}
}

func TestServerIDsCoverage(t *testing.T) {
	tp, err := NewFatTree(4, power.Wedge, power.Wedge, power.Wedge, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := len(tp.Root.ServerIDs); got != 16 {
		t.Fatalf("root covers %d servers", got)
	}
	seen := make(map[int]bool)
	for _, r := range tp.SubtreesAtLevel(LevelRack) {
		for _, s := range r.ServerIDs {
			if seen[s] {
				t.Fatalf("server %d in two racks", s)
			}
			seen[s] = true
		}
	}
	if len(seen) != 16 {
		t.Fatalf("racks cover %d servers", len(seen))
	}
}

func TestClone(t *testing.T) {
	tp := NewTestbed()
	cl := tp.Clone()
	rack := cl.SubtreesAtLevel(LevelRack)[0]
	if err := cl.FailUplinkFraction(rack, 1); err != nil {
		t.Fatal(err)
	}
	cl.Capacity[0] = resources.New(1, 1, 1)
	if !tp.IsSymmetric() {
		t.Fatal("mutating clone leaked into original")
	}
	origRack := tp.SubtreesAtLevel(LevelRack)[0]
	if origRack.Uplink.CapacityMbps == 0 {
		t.Fatal("original uplink shared with clone")
	}
	if cl.HopDistance(0, 1) != tp.HopDistance(0, 1) {
		t.Fatal("clone structure differs")
	}
}

func TestTableIMatchesPaper(t *testing.T) {
	if len(TableI) != 5 {
		t.Fatalf("TableI rows = %d, want 5", len(TableI))
	}
	wantServers := map[string]int{
		"Google": 98304, "Facebook": 184320, "VL2(96)": 46080,
		"Fat-tree(32)": 32768, "Fat-tree(72)": 93312,
	}
	wantSwitches := map[string]int{
		"Google": 2048 + 3584, "Facebook": 4608 + 576, "VL2(96)": 2304 + 144,
		"Fat-tree(32)": 1280, "Fat-tree(72)": 6480,
	}
	for _, dc := range TableI {
		if dc.NumServers != wantServers[dc.Name] {
			t.Errorf("%s servers = %d, want %d", dc.Name, dc.NumServers, wantServers[dc.Name])
		}
		if dc.NumSwitches() != wantSwitches[dc.Name] {
			t.Errorf("%s switches = %d, want %d", dc.Name, dc.NumSwitches(), wantSwitches[dc.Name])
		}
	}
}

func TestTableINetworkShareAround20Percent(t *testing.T) {
	// §II: "DCN only contributes around 20% of the total power" at the
	// 20%-utilization baseline. Google's 96 W SoC servers make it an
	// outlier with a higher network share; assert each DC stays a
	// minority consumer and the fleet average lands near 20%.
	sum := 0.0
	for _, dc := range TableI {
		network := dc.SwitchPowerFull()
		total := dc.TotalPowerAt(0.20)
		share := network / total
		if share <= 0 || share > 0.55 {
			t.Errorf("%s: network share = %.2f, want minority (< 0.55)", dc.Name, share)
		}
		sum += share
	}
	avg := sum / float64(len(TableI))
	if avg < 0.10 || avg > 0.35 {
		t.Errorf("average network share = %.2f, want ~0.20", avg)
	}
}

func TestLevelString(t *testing.T) {
	if LevelServer.String() != "server" || LevelRack.String() != "rack" ||
		LevelPod.String() != "pod" || LevelRoot.String() != "root" {
		t.Fatal("level names wrong")
	}
	if Level(9).String() == "" {
		t.Fatal("unknown level must still render")
	}
}

// capacityGraphEqual compares every link capacity and every server capacity
// vector between two structurally identical topologies.
func capacityGraphEqual(t *testing.T, got, want *Topology) {
	t.Helper()
	wantByID := make(map[int]*Node)
	for _, n := range want.Nodes() {
		wantByID[n.ID] = n
	}
	for _, n := range got.Nodes() {
		w, ok := wantByID[n.ID]
		if !ok {
			t.Fatalf("node %d missing from reference", n.ID)
		}
		switch {
		case n.Uplink == nil && w.Uplink == nil:
		case n.Uplink == nil || w.Uplink == nil:
			t.Fatalf("node %d uplink presence differs", n.ID)
		case n.Uplink.CapacityMbps != w.Uplink.CapacityMbps:
			t.Fatalf("node %d uplink = %v, want %v", n.ID, n.Uplink.CapacityMbps, w.Uplink.CapacityMbps)
		}
	}
	for id := range got.Capacity {
		if got.Capacity[id] != want.Capacity[id] {
			t.Fatalf("server %d capacity = %v, want %v", id, got.Capacity[id], want.Capacity[id])
		}
	}
}

func TestFailRecoverUplinkRoundTrip(t *testing.T) {
	tp, err := NewFatTree(4, power.Wedge, power.Wedge, power.Wedge, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	pristine := tp.Clone()
	rack := tp.SubtreesAtLevel(LevelRack)[2]
	pod := tp.SubtreesAtLevel(LevelPod)[1]
	// Compound fractional degradations on one link, a full cut on another.
	if err := tp.FailUplinkFraction(rack, 0.5); err != nil {
		t.Fatal(err)
	}
	if err := tp.FailUplinkFraction(rack, 0.5); err != nil {
		t.Fatal(err)
	}
	if rack.Uplink.CapacityMbps != 500 {
		t.Fatalf("compounded capacity = %v, want 500", rack.Uplink.CapacityMbps)
	}
	if err := tp.FailUplink(pod); err != nil {
		t.Fatal(err)
	}
	if pod.Uplink.CapacityMbps != 0 {
		t.Fatalf("cut link capacity = %v, want 0", pod.Uplink.CapacityMbps)
	}
	if rack.Uplink.Nominal() != 2000 {
		t.Fatalf("Nominal = %v, want 2000", rack.Uplink.Nominal())
	}
	if err := tp.RecoverUplink(rack); err != nil {
		t.Fatal(err)
	}
	if err := tp.RecoverUplink(pod); err != nil {
		t.Fatal(err)
	}
	capacityGraphEqual(t, tp, pristine)
	if !tp.IsSymmetric() {
		t.Fatal("recovered topology must be symmetric again")
	}
	// Recovering a never-failed link is a no-op; the root is an error.
	other := tp.SubtreesAtLevel(LevelRack)[0]
	if err := tp.RecoverUplink(other); err != nil {
		t.Fatal(err)
	}
	if other.Uplink.CapacityMbps != 2000 {
		t.Fatal("no-op recover changed a healthy link")
	}
	if err := tp.RecoverUplink(tp.Root); err == nil {
		t.Fatal("root has no uplink; must error")
	}
}

func TestFailRecoverServerRoundTrip(t *testing.T) {
	tp, err := NewFatTree(4, power.Wedge, power.Wedge, power.Wedge, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Make server 3 heterogeneous so restore provably returns its own
	// vector, not a fleet-wide default.
	tp.Capacity[3] = tp.Capacity[3].Add(resources.New(800, 0, 0))
	pristine := tp.Clone()

	if err := tp.FailServer(3); err != nil {
		t.Fatal(err)
	}
	if !tp.ServerFailed(3) || tp.NumFailedServers() != 1 {
		t.Fatal("failure not recorded")
	}
	if tp.Capacity[3] != (resources.Vector{}) {
		t.Fatalf("failed server capacity = %v, want zero", tp.Capacity[3])
	}
	if nic := tp.ServerNode[3].Uplink; nic.CapacityMbps != 0 {
		t.Fatalf("failed server NIC = %v, want 0", nic.CapacityMbps)
	}
	// Idempotent re-failure must not overwrite the nominal snapshot.
	if err := tp.FailServer(3); err != nil {
		t.Fatal(err)
	}
	if err := tp.RecoverServer(3); err != nil {
		t.Fatal(err)
	}
	if tp.ServerFailed(3) || tp.NumFailedServers() != 0 {
		t.Fatal("recovery not recorded")
	}
	capacityGraphEqual(t, tp, pristine)

	if err := tp.FailServer(-1); err == nil {
		t.Fatal("negative id must error")
	}
	if err := tp.FailServer(99); err == nil {
		t.Fatal("out-of-range id must error")
	}
	if err := tp.RecoverServer(99); err == nil {
		t.Fatal("out-of-range recover must error")
	}
	// Recover on a topology that never failed anything is a no-op.
	fresh, _ := NewFatTree(4, power.Wedge, power.Wedge, power.Wedge, testConfig())
	if err := fresh.RecoverServer(0); err != nil {
		t.Fatal(err)
	}
}

func TestThrottleServer(t *testing.T) {
	tp := NewTestbed()
	pristine := tp.Clone()
	if err := tp.ThrottleServer(5, 0.25); err != nil {
		t.Fatal(err)
	}
	want := pristine.Capacity[5].Scale(0.25)
	if tp.Capacity[5] != want {
		t.Fatalf("throttled capacity = %v, want %v", tp.Capacity[5], want)
	}
	if tp.ServerFailed(5) {
		t.Fatal("throttled server must not count as failed")
	}
	// Re-throttling scales from nominal, not from the already-throttled
	// value; factor 1 restores fully.
	if err := tp.ThrottleServer(5, 0.5); err != nil {
		t.Fatal(err)
	}
	if tp.Capacity[5] != pristine.Capacity[5].Scale(0.5) {
		t.Fatalf("re-throttle compounded: %v", tp.Capacity[5])
	}
	if err := tp.RecoverServer(5); err != nil {
		t.Fatal(err)
	}
	capacityGraphEqual(t, tp, pristine)

	if err := tp.ThrottleServer(5, 0); err == nil {
		t.Fatal("factor 0 must error")
	}
	if err := tp.ThrottleServer(5, 1.5); err == nil {
		t.Fatal("factor > 1 must error")
	}
	if err := tp.ThrottleServer(99, 0.5); err == nil {
		t.Fatal("out-of-range id must error")
	}
	if err := tp.FailServer(5); err != nil {
		t.Fatal(err)
	}
	if err := tp.ThrottleServer(5, 0.5); err == nil {
		t.Fatal("throttling a failed server must error")
	}
}

func TestFailedServersListing(t *testing.T) {
	tp := NewTestbed()
	if tp.FailedServers() != nil || tp.NumFailedServers() != 0 {
		t.Fatal("fresh topology must report no failures")
	}
	for _, id := range []int{7, 2, 11} {
		if err := tp.FailServer(id); err != nil {
			t.Fatal(err)
		}
	}
	got := tp.FailedServers()
	want := []int{2, 7, 11}
	if len(got) != len(want) {
		t.Fatalf("FailedServers = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FailedServers = %v, want %v (ascending)", got, want)
		}
	}
	if tp.ServerFailed(-1) || tp.ServerFailed(999) {
		t.Fatal("out-of-range ServerFailed must be false")
	}
}

func TestAverageCapacityExcludesFailedServers(t *testing.T) {
	tp := NewTestbed()
	healthy := tp.AverageCapacity()
	for id := 0; id < 4; id++ {
		if err := tp.FailServer(id); err != nil {
			t.Fatal(err)
		}
	}
	// 12 of 16 identical servers survive: the per-survivor average is
	// unchanged, not dragged down by the zeroed casualties.
	if got := tp.AverageCapacity(); got != healthy {
		t.Fatalf("alive average = %v, want %v", got, healthy)
	}
	for id := 4; id < 16; id++ {
		if err := tp.FailServer(id); err != nil {
			t.Fatal(err)
		}
	}
	if got := tp.AverageCapacity(); got != (resources.Vector{}) {
		t.Fatalf("all-failed average = %v, want zero", got)
	}
}

func TestClonePreservesFailureState(t *testing.T) {
	tp := NewTestbed()
	if err := tp.FailServer(1); err != nil {
		t.Fatal(err)
	}
	cl := tp.Clone()
	if !cl.ServerFailed(1) {
		t.Fatal("clone lost failure flag")
	}
	if err := cl.RecoverServer(1); err != nil {
		t.Fatal(err)
	}
	if cl.Capacity[1] != NewTestbed().Capacity[1] {
		t.Fatal("clone lost nominal capacity snapshot")
	}
	// Clone's recovery must not leak back into the original.
	if !tp.ServerFailed(1) {
		t.Fatal("recovering the clone mutated the original")
	}
}

func TestNodeByID(t *testing.T) {
	tp := NewTestbed()
	for _, n := range tp.Nodes() {
		if got := tp.NodeByID(n.ID); got != n {
			t.Fatalf("NodeByID(%d) = %p, want %p", n.ID, got, n)
		}
	}
	if tp.NodeByID(-42) != nil {
		t.Fatal("unknown id must return nil")
	}
}

func BenchmarkHopDistanceFatTree28(b *testing.B) {
	tp := NewSimulationFatTree()
	n := tp.NumServers()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tp.HopDistance(i%n, (i*7+13)%n)
	}
}
