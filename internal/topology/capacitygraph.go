package topology

import (
	"fmt"
	"runtime"
	"sync"

	"goldilocks/internal/graph"
	"goldilocks/internal/partition"
)

// CapacityGraph materializes the §III-A capacity graph (Fig. 4(b)): one
// vertex per server weighted by its resource capacity, and an edge between
// every server pair weighted by the hop distance between them. Recursively
// bipartitioning this graph with the *max-cut* objective peels the
// topology's substructures apart — the longest (inter-pod) edges are cut
// first, so pods, then racks, fall out automatically, exactly as the
// paper describes.
//
// The graph is complete (n·(n−1)/2 edges); building it for very large
// topologies is rejected to avoid accidental multi-gigabyte allocations —
// the tree hierarchy (SubtreesAtLevel) carries the same information and is
// what the production placement path uses.
func (t *Topology) CapacityGraph() (*graph.Graph, error) {
	n := t.NumServers()
	const maxServers = 4096
	if n > maxServers {
		return nil, fmt.Errorf("topology: capacity graph for %d servers exceeds the %d-server guard; use the subtree hierarchy instead", n, maxServers)
	}
	g := graph.New(n)
	for s := 0; s < n; s++ {
		g.SetVertexWeight(s, t.Capacity[s])
	}
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			g.AddEdge(a, b, float64(t.HopDistance(a, b)))
		}
	}
	return g, nil
}

// DiscoverSubstructures recursively bipartitions the capacity graph with
// the max-cut objective (the longest edges — the inter-substructure ones —
// get cut first) until pieces reach targetSize servers or become
// internally uniform. It returns the server groups in left-most order.
// This is the §III-B automatic substructure discovery; it should recover
// the racks/pods the builders created.
//
// Sibling subproblems of the recursion run concurrently up to
// opts.Parallelism workers (≤ 0 means GOMAXPROCS); the group list is
// assembled left-child-first, so the output order and contents match the
// serial run exactly.
func DiscoverSubstructures(g *graph.Graph, targetSize int, opts partition.Options) [][]int {
	if targetSize < 1 {
		targetSize = 1
	}
	all := make([]int, g.NumVertices())
	for i := range all {
		all[i] = i
	}
	par := opts.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	return discover(g, all, targetSize, opts, partition.NewLimiter(par))
}

func discover(g *graph.Graph, vertices []int, targetSize int, opts partition.Options, lim partition.Limiter) [][]int {
	if len(vertices) <= targetSize || uniformDistances(g, vertices) {
		return [][]int{append([]int(nil), vertices...)}
	}
	sub, toOrig := g.Subgraph(vertices)
	// Max-cut = min-cut on the negated graph; the multilevel partitioner
	// handles negative edges natively (it never coarsens across them, so
	// it runs as a flat FM on these small complete graphs).
	neg := graph.New(sub.NumVertices())
	for v := 0; v < sub.NumVertices(); v++ {
		neg.SetVertexWeight(v, sub.VertexWeight(v))
		for _, e := range sub.Neighbors(v) {
			if v < e.To {
				neg.AddEdge(v, e.To, -e.Weight)
			}
		}
	}
	bis := partition.Bisect(neg, opts)
	var left, right []int
	for sv, side := range bis.Side {
		if side == 0 {
			left = append(left, toOrig[sv])
		} else {
			right = append(right, toOrig[sv])
		}
	}
	if len(left) == 0 || len(right) == 0 {
		return [][]int{append([]int(nil), vertices...)}
	}
	var leftOut, rightOut [][]int
	if lim.TryAcquire() {
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer lim.Release()
			rightOut = discover(g, right, targetSize, opts, lim)
		}()
		leftOut = discover(g, left, targetSize, opts, lim)
		wg.Wait()
	} else {
		leftOut = discover(g, left, targetSize, opts, lim)
		rightOut = discover(g, right, targetSize, opts, lim)
	}
	return append(leftOut, rightOut...)
}

// uniformDistances reports whether all pairwise distances inside the
// vertex set are equal — no substructure left to split (e.g. servers of
// one rack).
func uniformDistances(g *graph.Graph, vertices []int) bool {
	if len(vertices) < 3 {
		return true
	}
	first := g.EdgeWeight(vertices[0], vertices[1])
	for i := 0; i < len(vertices); i++ {
		for j := i + 1; j < len(vertices); j++ {
			if g.EdgeWeight(vertices[i], vertices[j]) != first {
				return false
			}
		}
	}
	return true
}
