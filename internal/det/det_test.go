package det

import (
	"reflect"
	"testing"
)

func TestSortedKeysInts(t *testing.T) {
	m := map[int]string{3: "c", 1: "a", 2: "b", -7: "z"}
	if got, want := SortedKeys(m), []int{-7, 1, 2, 3}; !reflect.DeepEqual(got, want) {
		t.Fatalf("SortedKeys = %v, want %v", got, want)
	}
}

func TestSortedKeysStrings(t *testing.T) {
	m := map[string]int{"queue": 1, "cache": 2, "db": 3}
	if got, want := SortedKeys(m), []string{"cache", "db", "queue"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("SortedKeys = %v, want %v", got, want)
	}
}

func TestSortedKeysEmptyAndNil(t *testing.T) {
	if got := SortedKeys(map[int]int{}); len(got) != 0 {
		t.Fatalf("SortedKeys(empty) = %v", got)
	}
	var nilMap map[string]bool
	if got := SortedKeys(nilMap); len(got) != 0 {
		t.Fatalf("SortedKeys(nil) = %v", got)
	}
}
