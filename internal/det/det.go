// Package det provides deterministic iteration helpers for the packages
// bound by the scheduling-determinism contract (see internal/lint). Go
// randomizes map iteration order per run; ranging over SortedKeys instead
// makes the visit order a pure function of the map's contents, which is
// what the maporder analyzer demands of every order-sensitive loop.
package det

import (
	"cmp"
	"sort"
)

// SortedKeys returns the keys of m in ascending order. The copy is
// deliberate: callers range over the returned slice, so the loop order is
// reproducible across runs, processes, and Go versions.
func SortedKeys[M ~map[K]V, K cmp.Ordered, V any](m M) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
