// Package obs is the offline analysis plane over the artifacts a run
// already emits — Chrome-trace span JSON, Prometheus-text metrics, the
// decision audit log, and the epoch write-ahead journal. Nothing here
// feeds back into scheduling: obs consumes the flight-recorder outputs
// after (or, for the ops endpoint, beside) the deterministic core, so the
// placement path is untouched by analysis.
//
// Four capabilities, surfaced by cmd/goldilocks-inspect:
//
//   - critical-path: reconstruct the phase-span tree per epoch from a
//     deterministic Chrome trace, roll up self-time by stage, and walk the
//     heaviest-descent critical path through partition levels, FM rounds,
//     VC search and migration waves — the evidence behind the sharding
//     decision (ROADMAP open item 1).
//   - diff: compare two runs artifact-by-artifact (byte identity with
//     first-divergence pinpointing) and epoch-by-epoch over the journaled
//     EpochReport streams (power, TCT, migrations, solve, recovery).
//   - slo: rolling-window availability / recovery-time / solve-deadline
//     burn rates over the journaled EpochReport stream.
//   - ops: a read-only live endpoint (goldilocks-sim -serve) exposing
//     /metrics, /healthz and /epochz snapshots of a running session.
//
// obs is bound by the scheduling-determinism contract (internal/lint):
// every analysis output is a pure function of its input artifacts — no
// wall clock, no map-order dependence, no goroutines — so inspect output
// for a same-seed run is byte-identical at every parallelism level.
package obs
