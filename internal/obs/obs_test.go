package obs

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"goldilocks/internal/cluster"
	"goldilocks/internal/experiments"
	"goldilocks/internal/journal"
	"goldilocks/internal/scheduler"
	"goldilocks/internal/telemetry"
	"goldilocks/internal/topology"
	"goldilocks/internal/workload"
)

// TestParseChromeTraceRebuildsTree round-trips a hand-built span tree
// through the Chrome exporter and the obs parser.
func TestParseChromeTraceRebuildsTree(t *testing.T) {
	tr := telemetry.NewTracer()
	root := tr.Root("epoch 000 goldilocks", 0)
	place := root.Child("place")
	attempt := place.Child("attempt")
	attempt.Event("spill")
	attempt.End()
	place.End()
	acct := root.Child("account")
	acct.End()
	root.End()
	root2 := tr.Root("epoch 001 goldilocks", time.Minute)
	root2.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf, telemetry.ExportOptions{}); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseChromeTrace(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.Roots) != 2 {
		t.Fatalf("roots = %d, want 2", len(parsed.Roots))
	}
	r := parsed.Roots[0]
	if r.Name != "epoch 000 goldilocks" || len(r.Children) != 2 {
		t.Fatalf("root %q has %d children, want 2", r.Name, len(r.Children))
	}
	p := r.Children[0]
	if p.Name != "place" || len(p.Children) != 1 || p.Children[0].Name != "attempt" {
		t.Fatalf("place subtree mangled: %+v", p)
	}
	// Deterministic widths: attempt = 1 span + 1 event = 2; place = 1 + 2.
	if p.Children[0].Dur != 2 || p.Dur != 3 {
		t.Fatalf("ticks: attempt=%d (want 2), place=%d (want 3)", p.Children[0].Dur, p.Dur)
	}
	if p.Children[0].Events != 1 {
		t.Fatalf("attempt events = %d, want 1", p.Children[0].Events)
	}
	// Self width: place owns 1 tick (itself) beyond its child.
	if p.SelfDur() != 1 {
		t.Fatalf("place self = %d, want 1", p.SelfDur())
	}
	epoch, policy, ok := EpochRoot(r)
	if !ok || epoch != 0 || policy != "goldilocks" {
		t.Fatalf("EpochRoot = (%d, %q, %v)", epoch, policy, ok)
	}
}

// TestCriticalPathProfile pins the profiler's rollup and path walk on a
// known tree: the heaviest-descent chain must follow the widest child.
func TestCriticalPathProfile(t *testing.T) {
	tr := telemetry.NewTracer()
	root := tr.Root("epoch 000 goldilocks", 0)
	place := root.Child("place")
	heavy := place.Child("partition")
	for i := 0; i < 5; i++ {
		heavy.Event("level")
	}
	heavy.End()
	light := place.Child("migrate")
	light.End()
	place.End()
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf, telemetry.ExportOptions{}); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseChromeTrace(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	rep := CriticalPath(parsed)
	if rep.Epochs != 1 || len(rep.Paths) != 1 {
		t.Fatalf("epochs=%d paths=%d, want 1/1", rep.Epochs, len(rep.Paths))
	}
	want := []string{"place", "partition"}
	got := rep.Paths[0].Stages
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("critical path = %v, want %v", got, want)
	}
	if rep.DominantPath != "place -> partition" || rep.DominantCount != 1 {
		t.Fatalf("dominant = %q x%d", rep.DominantPath, rep.DominantCount)
	}
	// partition self width = 1 + 5 events = 6, all of it on-path.
	for _, st := range rep.Stages {
		if st.Stage == "partition" {
			if st.SelfDur != 6 || st.PathDur != 6 {
				t.Fatalf("partition self=%d on-path=%d, want 6/6", st.SelfDur, st.PathDur)
			}
		}
	}
}

// writeRunDir executes the crashchaos cell at the given parallelism and
// seed, writing the full artifact set (trace.json, metrics.prom,
// audit.txt, crashchaos.wal) into a fresh run directory.
func writeRunDir(t *testing.T, parallelism int, seed int64) string {
	t.Helper()
	dir := t.TempDir()
	sess := telemetry.NewSession()
	opts := experiments.DefaultCrashChaos()
	opts.Epochs = 6
	opts.Seed = seed
	opts.Parallelism = parallelism
	opts.Telemetry = sess
	opts.JournalPath = filepath.Join(dir, "crashchaos.wal")
	if _, err := experiments.CrashChaos(opts); err != nil {
		t.Fatal(err)
	}
	write := func(name string, fn func(w *bytes.Buffer) error) {
		var buf bytes.Buffer
		if err := fn(&buf); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, name), buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write(TraceFile, func(w *bytes.Buffer) error { return sess.Tracer.WriteChromeTrace(w, telemetry.ExportOptions{}) })
	write(MetricsFile, func(w *bytes.Buffer) error { return sess.Metrics.WritePrometheus(w) })
	write(AuditFile, func(w *bytes.Buffer) error { return sess.Audit.WriteText(w) })
	return dir
}

func inspectOutputs(t *testing.T, dir string) map[string]string {
	t.Helper()
	run, err := LoadRun(dir)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := run.Trace()
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]string)
	capture := func(name string, fn func(w *bytes.Buffer) error) {
		var buf bytes.Buffer
		if err := fn(&buf); err != nil {
			t.Fatal(err)
		}
		out[name] = buf.String()
	}
	cp := CriticalPath(tr)
	capture("critical-path.txt", func(w *bytes.Buffer) error { return cp.WriteText(w) })
	capture("critical-path.json", func(w *bytes.Buffer) error { return cp.WriteJSON(w) })
	slo := TrackSLO(run.Reports(), SLOConfig{})
	capture("slo.txt", func(w *bytes.Buffer) error { return slo.WriteText(w) })
	capture("slo.json", func(w *bytes.Buffer) error { return slo.WriteJSON(w) })
	return out
}

// TestInspectOutputsByteIdenticalAcrossParallelism is the acceptance
// regression: every inspect surface over a same-seed run is byte-identical
// at partitioner parallelism 1, 4 and 8, and `diff` between any pair of
// the runs is clean.
func TestInspectOutputsByteIdenticalAcrossParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-parallelism crashchaos sweep")
	}
	dirs := map[int]string{}
	outs := map[int]map[string]string{}
	for _, p := range []int{1, 4, 8} {
		dirs[p] = writeRunDir(t, p, 31)
		outs[p] = inspectOutputs(t, dirs[p])
	}
	for _, p := range []int{4, 8} {
		for name, want := range outs[1] {
			if got := outs[p][name]; got != want {
				t.Errorf("p=%d %s differs from p=1", p, name)
			}
		}
		runA, err := LoadRun(dirs[1])
		if err != nil {
			t.Fatal(err)
		}
		runB, err := LoadRun(dirs[p])
		if err != nil {
			t.Fatal(err)
		}
		rep := Diff(runA, runB)
		if !rep.Identical {
			var buf bytes.Buffer
			_ = rep.WriteMarkdown(&buf)
			t.Errorf("diff p=1 vs p=%d not identical:\n%s", p, buf.String())
		}
	}
}

// TestDiffNamesFirstDivergence pins the determinism-triage contract: two
// runs that differ must name the first diverging epoch and the first
// diverging journal record.
func TestDiffNamesFirstDivergence(t *testing.T) {
	dirA := writeRunDir(t, 1, 31)
	dirB := writeRunDir(t, 1, 77)
	runA, err := LoadRun(dirA)
	if err != nil {
		t.Fatal(err)
	}
	runB, err := LoadRun(dirB)
	if err != nil {
		t.Fatal(err)
	}
	rep := Diff(runA, runB)
	if rep.Identical {
		t.Fatal("different-seed runs reported identical")
	}
	if rep.FirstDivergingEpoch < 0 {
		t.Fatal("no first diverging epoch named")
	}
	found := false
	for _, ad := range rep.Artifacts {
		if ad.Artifact == "journal" {
			if ad.Identical || ad.FirstDivergence == "" {
				t.Fatalf("journal divergence not named: %+v", ad)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("no journal artifact in the diff")
	}
	if len(rep.Epochs) == 0 || len(rep.Epochs[0].Fields) == 0 {
		t.Fatal("no per-epoch field deltas")
	}
	var md, js bytes.Buffer
	if err := rep.WriteMarkdown(&md); err != nil {
		t.Fatal(err)
	}
	if err := rep.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(md.Bytes(), []byte("Runs differ")) {
		t.Fatalf("markdown missing verdict:\n%s", md.String())
	}
	if !bytes.Contains(js.Bytes(), []byte(`"first_diverging_epoch"`)) {
		t.Fatalf("json missing first_diverging_epoch:\n%s", js.String())
	}
}

// TestDiffIdenticalRun pins the inspect-guard contract: a run diffed
// against itself is identical on every artifact.
func TestDiffIdenticalRun(t *testing.T) {
	dir := writeRunDir(t, 1, 31)
	runA, err := LoadRun(dir)
	if err != nil {
		t.Fatal(err)
	}
	runB, err := LoadRun(dir)
	if err != nil {
		t.Fatal(err)
	}
	rep := Diff(runA, runB)
	if !rep.Identical {
		var buf bytes.Buffer
		_ = rep.WriteMarkdown(&buf)
		t.Fatalf("self-diff not identical:\n%s", buf.String())
	}
	if rep.FirstDivergingEpoch != -1 {
		t.Fatalf("self-diff names diverging epoch %d", rep.FirstDivergingEpoch)
	}
}

// journaledPolicyRun journals a short run of the given scheduling policy
// and returns a run directory holding only the WAL — diff degrades
// gracefully when the other artifacts were not written.
func journaledPolicyRun(t *testing.T, policy scheduler.Policy) string {
	t.Helper()
	dir := t.TempDir()
	w, err := journal.Create(filepath.Join(dir, "run.wal"), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	r := cluster.NewRunner(topology.NewTestbed(), policy, func() cluster.Options {
		o := cluster.DefaultOptions()
		o.Journal = w
		return o
	}())
	if err := cluster.WriteCheckpoint(w, 1, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	spec := workload.TwitterWorkload(60, 1)
	inputs := []cluster.EpochInput{{Spec: spec, RPS: 1000}, {Spec: spec.Scaled(0.5), RPS: 1000}, {Spec: spec.Scaled(0.8), RPS: 1000}}
	if _, err := r.RunSeries(inputs); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestDiffAcrossPoliciesNamesPolicyAndEpoch pins the policy-A/B use
// case: diffing a Goldilocks run against a Borg run over the same
// workload names the first diverging epoch and carries both policy names
// in the per-epoch deltas.
func TestDiffAcrossPoliciesNamesPolicyAndEpoch(t *testing.T) {
	dirA := journaledPolicyRun(t, scheduler.Goldilocks{})
	dirB := journaledPolicyRun(t, scheduler.Borg{})
	runA, err := LoadRun(dirA)
	if err != nil {
		t.Fatal(err)
	}
	runB, err := LoadRun(dirB)
	if err != nil {
		t.Fatal(err)
	}
	rep := Diff(runA, runB)
	if rep.Identical {
		t.Fatal("different-policy runs reported identical")
	}
	if rep.FirstDivergingEpoch != 0 {
		t.Fatalf("first diverging epoch = %d, want 0 (policies differ from the first report)", rep.FirstDivergingEpoch)
	}
	if len(rep.Epochs) == 0 {
		t.Fatal("no per-epoch deltas")
	}
	d := rep.Epochs[0]
	if d.PolicyA == d.PolicyB {
		t.Fatalf("policy names not distinguished: %q vs %q", d.PolicyA, d.PolicyB)
	}
	var md bytes.Buffer
	if err := rep.WriteMarkdown(&md); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(md.Bytes(), []byte(d.PolicyA)) || !bytes.Contains(md.Bytes(), []byte(d.PolicyB)) {
		t.Fatalf("markdown report does not carry both policy names:\n%s", md.String())
	}
}
