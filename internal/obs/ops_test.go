package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"goldilocks/internal/cluster"
	"goldilocks/internal/telemetry"
)

// get fetches a path from the test server and returns status, content
// type and body.
func get(t *testing.T, srv *httptest.Server, path string) (int, string, []byte) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), body
}

// TestOpsEndpoints exercises the three ops views while a writer publishes
// epoch reports through the session sink — run under -race this pins the
// snapshot discipline of the handlers.
func TestOpsEndpoints(t *testing.T) {
	sess := telemetry.NewSession()
	sess.Metrics.Counter("epochs_total").Add(3)
	sess.Metrics.Counter(telemetry.LabeledName("power_w", telemetry.Label{Key: "policy", Val: "goldilocks"})).Add(41)
	ops := NewOps(sess)
	srv := httptest.NewServer(ops.Handler())
	defer srv.Close()

	const epochs = 50
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < epochs; i++ {
			sess.ReportSink(cluster.EpochReport{Epoch: i, Policy: "goldilocks", ActiveServers: 4 + i%3})
		}
	}()
	// Hammer the endpoints concurrently with the publisher.
	for i := 0; i < 20; i++ {
		status, _, _ := get(t, srv, "/healthz")
		if status != http.StatusOK {
			t.Fatalf("/healthz status = %d", status)
		}
		status, _, _ = get(t, srv, "/epochz")
		if status != http.StatusOK {
			t.Fatalf("/epochz status = %d", status)
		}
		status, _, _ = get(t, srv, "/metrics")
		if status != http.StatusOK {
			t.Fatalf("/metrics status = %d", status)
		}
	}
	wg.Wait()

	// /healthz reflects the final count.
	_, ctype, body := get(t, srv, "/healthz")
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Fatalf("/healthz content type = %q", ctype)
	}
	if got := string(body); got != "ok epochs=50\n" {
		t.Fatalf("/healthz body = %q", got)
	}

	// /metrics is valid Prometheus text: versioned content type, one TYPE
	// header per family, every non-comment line "name[{labels}] value".
	_, ctype, body = get(t, srv, "/metrics")
	if ctype != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("/metrics content type = %q", ctype)
	}
	types := map[string]int{}
	sc := bufio.NewScanner(bytes.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			types[fields[2]]++
			continue
		}
		if strings.HasPrefix(line, "#") || line == "" {
			continue
		}
		if i := strings.LastIndexByte(line, ' '); i <= 0 {
			t.Fatalf("malformed sample line %q", line)
		}
	}
	for fam, n := range types {
		if n != 1 {
			t.Fatalf("family %q has %d TYPE lines", fam, n)
		}
	}
	if types["epochs_total"] != 1 || types["power_w"] != 1 {
		t.Fatalf("expected families missing from /metrics:\n%s", body)
	}

	// /epochz is valid NDJSON: one report per line, all 50 present, in
	// publication order.
	_, ctype, body = get(t, srv, "/epochz")
	if ctype != "application/x-ndjson" {
		t.Fatalf("/epochz content type = %q", ctype)
	}
	var got []cluster.EpochReport
	sc = bufio.NewScanner(bytes.NewReader(body))
	for sc.Scan() {
		var rep cluster.EpochReport
		if err := json.Unmarshal(sc.Bytes(), &rep); err != nil {
			t.Fatalf("invalid NDJSON line %q: %v", sc.Text(), err)
		}
		got = append(got, rep)
	}
	if len(got) != epochs {
		t.Fatalf("/epochz returned %d reports, want %d", len(got), epochs)
	}
	for i, rep := range got {
		if rep.Epoch != i || rep.Policy != "goldilocks" {
			t.Fatalf("report %d out of order: %+v", i, rep)
		}
	}
}

// TestOpsIgnoresForeignSinkPayloads pins that the sink drops values that
// are not epoch reports instead of panicking.
func TestOpsIgnoresForeignSinkPayloads(t *testing.T) {
	sess := telemetry.NewSession()
	ops := NewOps(sess)
	sess.ReportSink("not a report")
	sess.ReportSink(nil)
	sess.ReportSink(cluster.EpochReport{Epoch: 7})
	reps := ops.Reports()
	if len(reps) != 1 || reps[0].Epoch != 7 {
		t.Fatalf("Reports() = %+v, want the single real report", reps)
	}
}

// TestNewOpsNilSession: a nil session must not panic and /healthz and
// /epochz still serve (there is no registry to export, so /metrics is not
// part of this contract).
func TestNewOpsNilSession(t *testing.T) {
	ops := NewOps(nil)
	srv := httptest.NewServer(ops.Handler())
	defer srv.Close()
	status, _, body := get(t, srv, "/healthz")
	if status != http.StatusOK || string(body) != "ok epochs=0\n" {
		t.Fatalf("/healthz = %d %q", status, body)
	}
	status, _, _ = get(t, srv, "/epochz")
	if status != http.StatusOK {
		t.Fatalf("/epochz status = %d", status)
	}
}
