package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"goldilocks/internal/cluster"
)

// ArtifactDiff is the byte-identity verdict for one artifact pair.
type ArtifactDiff struct {
	Artifact string `json:"artifact"` // "trace", "metrics", "audit", "journal"
	// Present says which sides have the artifact: "both", "a-only",
	// "b-only", "neither".
	Present   string `json:"present"`
	Identical bool   `json:"identical"`
	// FirstDivergence locates the first differing unit when both sides
	// have the artifact and differ: "line N: ..." for text artifacts,
	// "record N (kind): ..." for the journal.
	FirstDivergence string `json:"first_divergence,omitempty"`
}

// FieldDelta is one diverging EpochReport field.
type FieldDelta struct {
	Field string  `json:"field"`
	A     float64 `json:"a"`
	B     float64 `json:"b"`
	Delta float64 `json:"delta"`
}

// EpochDelta lists one epoch's diverging report fields.
type EpochDelta struct {
	Epoch   int          `json:"epoch"`
	PolicyA string       `json:"policy_a,omitempty"`
	PolicyB string       `json:"policy_b,omitempty"`
	Fields  []FieldDelta `json:"fields,omitempty"`
}

// DiffReport is the full comparison of two runs.
type DiffReport struct {
	RunA string `json:"run_a"`
	RunB string `json:"run_b"`
	// Identical is true when every artifact present on either side is
	// present and byte-identical on both — the inspect-guard contract for
	// two same-seed runs.
	Identical bool           `json:"identical"`
	Artifacts []ArtifactDiff `json:"artifacts"`
	// EpochsA/B count the journaled reports on each side.
	EpochsA int `json:"epochs_a"`
	EpochsB int `json:"epochs_b"`
	// FirstDivergingEpoch is the first epoch whose reports differ (-1
	// when the streams agree over their common prefix).
	FirstDivergingEpoch int `json:"first_diverging_epoch"`
	// Epochs holds the per-epoch deltas (diverging fields only).
	Epochs []EpochDelta `json:"epochs,omitempty"`
}

// reportFields is the diff surface of an EpochReport: the per-epoch axes
// operators compare across policies and the control-plane robustness
// axes. Order is presentation order.
var reportFields = []struct {
	name string
	get  func(r cluster.EpochReport) float64
}{
	{"active_servers", func(r cluster.EpochReport) float64 { return float64(r.ActiveServers) }},
	{"total_power_w", func(r cluster.EpochReport) float64 { return r.TotalPowerW }},
	{"mean_tct_ms", func(r cluster.EpochReport) float64 { return r.MeanTCTMS }},
	{"p99_tct_ms", func(r cluster.EpochReport) float64 { return r.TCT.P99MS }},
	{"energy_per_request_j", func(r cluster.EpochReport) float64 { return r.EnergyPerRequestJ }},
	{"migrations", func(r cluster.EpochReport) float64 { return float64(r.Migrations) }},
	{"migration_mb", func(r cluster.EpochReport) float64 { return r.MigrationMB }},
	{"migration_retries", func(r cluster.EpochReport) float64 { return float64(r.MigrationRetries) }},
	{"dropped_migrations", func(r cluster.EpochReport) float64 { return float64(r.DroppedMigrations) }},
	{"ladder_rung", func(r cluster.EpochReport) float64 { return float64(r.LadderRung) }},
	{"modeled_solve_ms", func(r cluster.EpochReport) float64 { return r.ModeledSolveMS }},
	{"recovery_time_s", func(r cluster.EpochReport) float64 { return r.RecoveryTimeS }},
	{"availability", func(r cluster.EpochReport) float64 { return r.Availability }},
	{"sla_violations", func(r cluster.EpochReport) float64 { return r.SLAViolations }},
	{"admission_rejected", func(r cluster.EpochReport) float64 { return float64(r.AdmissionRejected) }},
}

// Diff compares two loaded runs: byte identity per artifact (with first
// divergence), then per-epoch report deltas from the journaled streams.
func Diff(a, b *Run) *DiffReport {
	rep := &DiffReport{RunA: a.Dir, RunB: b.Dir, Identical: true, FirstDivergingEpoch: -1}

	rep.addArtifact("trace", a.TraceData, b.TraceData, firstLineDivergence)
	rep.addArtifact("metrics", a.MetricsData, b.MetricsData, firstLineDivergence)
	rep.addArtifact("audit", a.AuditData, b.AuditData, firstLineDivergence)
	rep.addJournal(a, b)

	ra, rb := a.Reports(), b.Reports()
	rep.EpochsA, rep.EpochsB = len(ra), len(rb)
	n := len(ra)
	if len(rb) < n {
		n = len(rb)
	}
	for i := 0; i < n; i++ {
		d := EpochDelta{Epoch: ra[i].Epoch}
		if ra[i].Policy != rb[i].Policy {
			d.PolicyA, d.PolicyB = ra[i].Policy, rb[i].Policy
		}
		for _, f := range reportFields {
			va, vb := f.get(ra[i]), f.get(rb[i])
			if va != vb {
				d.Fields = append(d.Fields, FieldDelta{Field: f.name, A: va, B: vb, Delta: vb - va})
			}
		}
		if len(d.Fields) > 0 || d.PolicyA != d.PolicyB {
			if rep.FirstDivergingEpoch < 0 {
				rep.FirstDivergingEpoch = d.Epoch
			}
			rep.Epochs = append(rep.Epochs, d)
		}
	}
	if len(ra) != len(rb) {
		rep.Identical = false
		if rep.FirstDivergingEpoch < 0 {
			rep.FirstDivergingEpoch = n
		}
	}
	if len(rep.Epochs) > 0 {
		rep.Identical = false
	}
	return rep
}

func (rep *DiffReport) addArtifact(name string, da, db []byte, diverge func(da, db []byte) string) {
	ad := ArtifactDiff{Artifact: name}
	switch {
	case da == nil && db == nil:
		ad.Present, ad.Identical = "neither", true
	case db == nil:
		ad.Present = "a-only"
	case da == nil:
		ad.Present = "b-only"
	default:
		ad.Present = "both"
		ad.Identical = bytes.Equal(da, db)
		if !ad.Identical {
			ad.FirstDivergence = diverge(da, db)
		}
	}
	if !ad.Identical {
		rep.Identical = false
	}
	rep.Artifacts = append(rep.Artifacts, ad)
}

// addJournal diffs the journals at the framed-record level so the first
// diverging record (and its kind) is named even when the byte streams
// disagree deep inside a record body.
func (rep *DiffReport) addJournal(a, b *Run) {
	ad := ArtifactDiff{Artifact: "journal"}
	switch {
	case a.JournalPath == "" && b.JournalPath == "":
		ad.Present, ad.Identical = "neither", true
	case b.JournalPath == "":
		ad.Present = "a-only"
	case a.JournalPath == "":
		ad.Present = "b-only"
	default:
		ad.Present = "both"
		ad.Identical = true
		n := len(a.Records)
		if len(b.Records) < n {
			n = len(b.Records)
		}
		for i := 0; i < n; i++ {
			ra, rb := a.Records[i], b.Records[i]
			if ra.Kind != rb.Kind {
				ad.Identical = false
				ad.FirstDivergence = fmt.Sprintf("record %d: kind %s vs %s", i, ra.Kind, rb.Kind)
				break
			}
			if !bytes.Equal(ra.Body, rb.Body) {
				ad.Identical = false
				ad.FirstDivergence = fmt.Sprintf("record %d (%s): %d-byte body vs %d-byte body differ", i, ra.Kind, len(ra.Body), len(rb.Body))
				break
			}
		}
		if ad.Identical && len(a.Records) != len(b.Records) {
			ad.Identical = false
			ad.FirstDivergence = fmt.Sprintf("record %d: present in one journal only (%d vs %d records)", n, len(a.Records), len(b.Records))
		}
	}
	if !ad.Identical {
		rep.Identical = false
	}
	rep.Artifacts = append(rep.Artifacts, ad)
}

// firstLineDivergence names the first differing line of two text
// artifacts, 1-indexed, quoting both sides (truncated).
func firstLineDivergence(da, db []byte) string {
	la := bytes.Split(da, []byte("\n"))
	lb := bytes.Split(db, []byte("\n"))
	n := len(la)
	if len(lb) < n {
		n = len(lb)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(la[i], lb[i]) {
			return fmt.Sprintf("line %d: %q vs %q", i+1, clip(la[i]), clip(lb[i]))
		}
	}
	return fmt.Sprintf("line %d: present in one artifact only", n+1)
}

func clip(b []byte) string {
	const max = 80
	if len(b) <= max {
		return string(b)
	}
	return string(b[:max]) + "..."
}

// WriteJSON renders the diff machine-readably.
func (rep *DiffReport) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// WriteMarkdown renders the diff as the human-facing report.
func (rep *DiffReport) WriteMarkdown(w io.Writer) error {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "# Run diff\n\n- A: `%s`\n- B: `%s`\n\n", rep.RunA, rep.RunB)
	if rep.Identical {
		buf.WriteString("**Runs are identical**: every shared artifact matches byte for byte.\n")
	} else {
		fmt.Fprintf(&buf, "**Runs differ** (first diverging epoch: %s).\n", divergingEpochLabel(rep))
	}
	buf.WriteString("\n## Artifacts\n\n| artifact | present | identical | first divergence |\n|---|---|---|---|\n")
	for _, ad := range rep.Artifacts {
		ident := "no"
		if ad.Identical {
			ident = "yes"
		}
		div := ad.FirstDivergence
		if div == "" {
			div = "—"
		}
		fmt.Fprintf(&buf, "| %s | %s | %s | %s |\n", ad.Artifact, ad.Present, ident, div)
	}
	if len(rep.Epochs) > 0 {
		fmt.Fprintf(&buf, "\n## Epoch deltas (%d vs %d epochs, %d differ)\n", rep.EpochsA, rep.EpochsB, len(rep.Epochs))
		for _, d := range rep.Epochs {
			fmt.Fprintf(&buf, "\n### Epoch %d", d.Epoch)
			if d.PolicyA != d.PolicyB {
				fmt.Fprintf(&buf, " (policy %s vs %s)", d.PolicyA, d.PolicyB)
			}
			buf.WriteString("\n\n| field | A | B | delta |\n|---|---|---|---|\n")
			for _, f := range d.Fields {
				fmt.Fprintf(&buf, "| %s | %g | %g | %+g |\n", f.Field, f.A, f.B, f.Delta)
			}
		}
	}
	_, err := w.Write(buf.Bytes())
	return err
}

func divergingEpochLabel(rep *DiffReport) string {
	if rep.FirstDivergingEpoch < 0 {
		return "none in the common prefix"
	}
	return fmt.Sprintf("%d", rep.FirstDivergingEpoch)
}
