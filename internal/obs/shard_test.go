package obs

import (
	"bytes"
	"testing"

	"goldilocks/internal/partition"
	"goldilocks/internal/resources"
	"goldilocks/internal/telemetry"
	"goldilocks/internal/workload"
)

func TestStageCollapsesShardNames(t *testing.T) {
	cases := map[string]string{
		"epoch 003 goldilocks": "epoch",
		"shard 000":            "shard",
		"shard 017":            "shard",
		"presplit":             "presplit",
		"stitch":               "stitch",
		"partition":            "partition",
	}
	for name, want := range cases {
		if got := Stage(name); got != want {
			t.Errorf("Stage(%q) = %q, want %q", name, got, want)
		}
	}
}

func TestShardRoot(t *testing.T) {
	if shard, ok := ShardRoot(&Span{Name: "shard 007"}); !ok || shard != 7 {
		t.Errorf("ShardRoot(shard 007) = (%d, %v), want (7, true)", shard, ok)
	}
	for _, name := range []string{"presplit", "epoch 001 borg", "stitch", "shardless"} {
		if _, ok := ShardRoot(&Span{Name: name}); ok {
			t.Errorf("ShardRoot(%q) = true, want false", name)
		}
	}
}

// shardedTraceJSON partitions the mixture workload in sharded mode under a
// live tracer and returns the exported Chrome trace.
func shardedTraceJSON(t *testing.T, p int) []byte {
	t.Helper()
	tr := telemetry.NewTracer()
	root := tr.Root("epoch 000 goldilocks", 0)
	g := workload.MixtureWorkload(2000, 7).Graph()
	total := g.TotalVertexWeight()
	var maxV resources.Vector
	for v := 0; v < g.NumVertices(); v++ {
		w := g.VertexWeight(v)
		for d := range w {
			if w[d] > maxV[d] {
				maxV[d] = w[d]
			}
		}
	}
	usable := total.Scale(1.0 / 25)
	for d := range usable {
		if usable[d] < 2*maxV[d] {
			usable[d] = 2 * maxV[d]
		}
	}
	opts := partition.DefaultOptions()
	opts.Seed = 1
	opts.Parallelism = p
	opts.ShardCount = 4
	opts.Trace = root
	if _, err := partition.PartitionToFit(g, usable, 1.0, opts); err != nil {
		t.Fatal(err)
	}
	root.End()
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf, telemetry.ExportOptions{}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCriticalPathShardRollup pins the per-shard rollup over a real sharded
// partition trace: one row per shard in ascending order, the shard and
// stitch stages present in the stage rollup, and -stage filtering keeping
// exactly the requested rows.
func TestCriticalPathShardRollup(t *testing.T) {
	parsed, err := ParseChromeTrace(shardedTraceJSON(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	rep := CriticalPath(parsed)
	if len(rep.Shards) != 4 {
		t.Fatalf("shard rows = %d, want 4", len(rep.Shards))
	}
	for i, ss := range rep.Shards {
		if ss.Shard != i {
			t.Errorf("shard row %d has index %d", i, ss.Shard)
		}
		if ss.Dur <= 0 || ss.Spans != 1 {
			t.Errorf("shard %d: dur=%d spans=%d, want positive dur and 1 span", ss.Shard, ss.Dur, ss.Spans)
		}
		if ss.Share <= 0 || ss.Share > 1 {
			t.Errorf("shard %d share %v out of (0,1]", ss.Shard, ss.Share)
		}
	}
	stages := map[string]bool{}
	for _, st := range rep.Stages {
		stages[st.Stage] = true
	}
	for _, want := range []string{"shard", "stitch", "presplit", "partition"} {
		if !stages[want] {
			t.Errorf("stage rollup missing %q (have %v)", want, stages)
		}
	}

	shardOnly := CriticalPath(parsed)
	shardOnly.FilterStage("shard")
	if len(shardOnly.Stages) != 1 || shardOnly.Stages[0].Stage != "shard" {
		t.Fatalf("FilterStage(shard) kept %+v", shardOnly.Stages)
	}
	if len(shardOnly.Shards) != 4 {
		t.Errorf("FilterStage(shard) dropped the per-shard rollup")
	}
	if len(shardOnly.Paths) != 0 || shardOnly.DominantCount != 0 {
		t.Errorf("FilterStage left paths: %d, dominant x%d", len(shardOnly.Paths), shardOnly.DominantCount)
	}

	stitchOnly := CriticalPath(parsed)
	stitchOnly.FilterStage("stitch")
	if len(stitchOnly.Stages) != 1 || stitchOnly.Stages[0].Stage != "stitch" {
		t.Fatalf("FilterStage(stitch) kept %+v", stitchOnly.Stages)
	}
	if stitchOnly.Shards != nil {
		t.Errorf("FilterStage(stitch) kept the per-shard rollup")
	}
}

// TestShardRollupByteIdenticalAcrossParallelism is the sharded analogue of
// the inspect acceptance regression: the critical-path report (text and
// JSON, filtered and not) over a same-seed sharded partition trace is
// byte-identical at Parallelism 1, 4 and 8.
func TestShardRollupByteIdenticalAcrossParallelism(t *testing.T) {
	render := func(p int) map[string]string {
		parsed, err := ParseChromeTrace(shardedTraceJSON(t, p))
		if err != nil {
			t.Fatal(err)
		}
		out := map[string]string{}
		capture := func(name string, rep *CritPathReport) {
			var txt, js bytes.Buffer
			if err := rep.WriteText(&txt); err != nil {
				t.Fatal(err)
			}
			if err := rep.WriteJSON(&js); err != nil {
				t.Fatal(err)
			}
			out[name+".txt"] = txt.String()
			out[name+".json"] = js.String()
		}
		capture("full", CriticalPath(parsed))
		filtered := CriticalPath(parsed)
		filtered.FilterStage("shard")
		capture("shard", filtered)
		return out
	}
	ref := render(1)
	for _, p := range []int{4, 8} {
		got := render(p)
		for name, want := range ref {
			if got[name] != want {
				t.Errorf("p=%d %s differs from p=1", p, name)
			}
		}
	}
}
