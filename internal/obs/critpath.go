package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"goldilocks/internal/det"
)

// StageStat is one row of the critical-path rollup: how much of the run's
// timeline a phase owns directly (self, excluding children) and how much
// of it sits on epoch critical paths.
type StageStat struct {
	Stage string `json:"stage"`
	// SelfDur is the stage's total self width across every span.
	SelfDur int64 `json:"self_dur"`
	// SelfShare is SelfDur over the forest's total width.
	SelfShare float64 `json:"self_share"`
	// Spans counts the stage's spans.
	Spans int `json:"spans"`
	// PathDur is the stage's total self width restricted to spans on an
	// epoch critical path — the part of the stage that gates epoch
	// completion, the number the sharding decision weighs.
	PathDur int64 `json:"path_dur"`
}

// ShardStat is one per-shard rollup row of the sharded partitioner: the
// total width of shard N's pipeline subtree across every occurrence (one
// per partition call that sharded). Comparing rows shows shard balance;
// comparing their sum against the "stitch" stage row attributes sharded
// partition time to concurrent shard work vs. the serial stitch.
type ShardStat struct {
	Shard int `json:"shard"`
	// Dur is the full width of the shard's pipeline subtree (not just
	// self): the work done inside shard N's fit-driven partitioning.
	Dur int64 `json:"dur"`
	// Share is Dur over the forest's total width.
	Share float64 `json:"share"`
	// Spans counts the shard's root spans (≈ sharded partition calls).
	Spans int `json:"spans"`
}

// EpochPath is the critical path of one epoch: the heaviest-descent chain
// from the epoch root to a leaf.
type EpochPath struct {
	Epoch  int    `json:"epoch"`
	Policy string `json:"policy"`
	// Dur is the epoch root's width.
	Dur int64 `json:"dur"`
	// Stages is the chain of stage names from the root (exclusive) down
	// to the leaf: the phases that gate this epoch.
	Stages []string `json:"stages"`
}

// CritPathReport is the critical-path profile of one trace.
type CritPathReport struct {
	// Epochs counts per-epoch roots; Roots counts all roots (epoch roots
	// plus journal-replay / netsim-run style one-offs).
	Epochs   int   `json:"epochs"`
	Roots    int   `json:"roots"`
	Spans    int   `json:"spans"`
	TotalDur int64 `json:"total_dur"`
	// Stages is the rollup, heaviest self width first.
	Stages []StageStat `json:"stages"`
	// Shards is the per-shard rollup, ascending shard index; empty when
	// the trace has no sharded partitions.
	Shards []ShardStat `json:"shards,omitempty"`
	// Paths is one critical path per epoch root, in root order.
	Paths []EpochPath `json:"paths"`
	// DominantPath is the most frequent epoch path signature, and
	// DominantCount how many epochs share it.
	DominantPath  string `json:"dominant_path"`
	DominantCount int    `json:"dominant_count"`
}

// CriticalPath profiles the trace: self-width rollups per stage and the
// heaviest-descent critical path of every epoch. Output is a pure
// function of the trace, so same-seed runs profile byte-identically.
func CriticalPath(tr *Trace) *CritPathReport {
	rep := &CritPathReport{Roots: len(tr.Roots), Spans: tr.Spans}
	stats := make(map[string]*StageStat)
	stat := func(name string) *StageStat {
		st := stats[Stage(name)]
		if st == nil {
			st = &StageStat{Stage: Stage(name)}
			stats[Stage(name)] = st
		}
		return st
	}
	shardStats := make(map[int]*ShardStat)
	var walk func(s *Span)
	walk = func(s *Span) {
		st := stat(s.Name)
		st.SelfDur += s.SelfDur()
		st.Spans++
		if shard, ok := ShardRoot(s); ok {
			ss := shardStats[shard]
			if ss == nil {
				ss = &ShardStat{Shard: shard}
				shardStats[shard] = ss
			}
			ss.Dur += s.Dur
			ss.Spans++
		}
		for _, c := range s.Children {
			walk(c)
		}
	}
	pathCount := make(map[string]int)
	var pathKeys []string
	for _, root := range tr.Roots {
		rep.TotalDur += root.Dur
		walk(root)
		epoch, policy, ok := EpochRoot(root)
		if !ok {
			continue
		}
		rep.Epochs++
		p := EpochPath{Epoch: epoch, Policy: policy, Dur: root.Dur}
		// Heaviest-descent: from the root, follow the widest child (ties
		// break to the earlier sibling, which is deterministic because
		// sibling order is creation order). Every span on the chain
		// charges its self width to the stage's PathDur.
		for s := root; ; {
			stat(s.Name).PathDur += s.SelfDur()
			var next *Span
			for _, c := range s.Children {
				if next == nil || c.Dur > next.Dur {
					next = c
				}
			}
			if next == nil {
				break
			}
			s = next
			p.Stages = append(p.Stages, Stage(s.Name))
		}
		sig := pathSignature(p.Stages)
		if pathCount[sig] == 0 {
			pathKeys = append(pathKeys, sig)
		}
		pathCount[sig]++
		rep.Paths = append(rep.Paths, p)
	}
	// Dominant path: highest count, ties to first appearance.
	for _, sig := range pathKeys {
		if pathCount[sig] > rep.DominantCount {
			rep.DominantPath, rep.DominantCount = sig, pathCount[sig]
		}
	}
	for _, name := range det.SortedKeys(stats) {
		st := stats[name]
		if rep.TotalDur > 0 {
			st.SelfShare = float64(st.SelfDur) / float64(rep.TotalDur)
		}
		rep.Stages = append(rep.Stages, *st)
	}
	sort.SliceStable(rep.Stages, func(i, j int) bool { return rep.Stages[i].SelfDur > rep.Stages[j].SelfDur })
	for _, shard := range det.SortedKeys(shardStats) {
		ss := shardStats[shard]
		if rep.TotalDur > 0 {
			ss.Share = float64(ss.Dur) / float64(rep.TotalDur)
		}
		rep.Shards = append(rep.Shards, *ss)
	}
	return rep
}

// FilterStage restricts the rollup to one stage (the critical-path
// -stage flag): Stages keeps only the named stage's row, the per-shard
// rollup survives only for the "shard" stage, and the per-epoch path
// chains are dropped (they span every stage). Totals are left untouched
// so shares stay comparable across filtered reports.
func (r *CritPathReport) FilterStage(stage string) {
	kept := r.Stages[:0]
	for _, st := range r.Stages {
		if st.Stage == stage {
			kept = append(kept, st)
		}
	}
	r.Stages = kept
	if stage != "shard" {
		r.Shards = nil
	}
	r.Paths = nil
	r.DominantPath, r.DominantCount = "", 0
}

func pathSignature(stages []string) string {
	var b bytes.Buffer
	for i, s := range stages {
		if i > 0 {
			b.WriteString(" -> ")
		}
		b.WriteString(s)
	}
	return b.String()
}

// WriteText renders the profile as the human-facing report.
func (r *CritPathReport) WriteText(w io.Writer) error {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "critical-path: %d epochs, %d roots, %d spans, %d ticks on the timeline\n",
		r.Epochs, r.Roots, r.Spans, r.TotalDur)
	fmt.Fprintf(&buf, "\nstage rollup (self width, heaviest first):\n")
	for _, st := range r.Stages {
		fmt.Fprintf(&buf, "  %-24s %8d  %5.1f%%  spans=%d  on-path=%d\n",
			st.Stage, st.SelfDur, st.SelfShare*100, st.Spans, st.PathDur)
	}
	if len(r.Shards) > 0 {
		fmt.Fprintf(&buf, "\nper-shard rollup (pipeline subtree width):\n")
		for _, ss := range r.Shards {
			fmt.Fprintf(&buf, "  shard %03d %14d  %5.1f%%  spans=%d\n",
				ss.Shard, ss.Dur, ss.Share*100, ss.Spans)
		}
	}
	if r.Epochs > 0 && len(r.Paths) > 0 {
		fmt.Fprintf(&buf, "\ndominant critical path (%d/%d epochs):\n  epoch -> %s\n",
			r.DominantCount, r.Epochs, r.DominantPath)
		fmt.Fprintf(&buf, "\nper-epoch critical path:\n")
		for _, p := range r.Paths {
			fmt.Fprintf(&buf, "  epoch %03d [%s] %d ticks: %s\n", p.Epoch, p.Policy, p.Dur, pathSignature(p.Stages))
		}
	}
	_, err := w.Write(buf.Bytes())
	return err
}

// WriteJSON renders the profile machine-readably (indented, stable field
// order, trailing newline).
func (r *CritPathReport) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
