package obs

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Span is one reconstructed phase span from a Chrome trace: a complete
// ("X") event plus the instant events and child spans its interval
// contains. On the deterministic timeline Dur is the span's tree width in
// ticks (1 + events + Σ children), not a latency — see telemetry's
// WriteChromeTrace.
type Span struct {
	Name     string
	Start    int64 // timeline µs (deterministic: ticks)
	Dur      int64
	SimAt    string
	Events   int
	Children []*Span
}

// End returns the first tick after the span's interval.
func (s *Span) End() int64 { return s.Start + s.Dur }

// SelfDur returns the span's own width: its duration minus its children's
// — on the deterministic timeline, 1 tick for the span plus 1 per instant
// event, and for wall traces the time not attributed to any child phase.
func (s *Span) SelfDur() int64 {
	d := s.Dur
	for _, c := range s.Children {
		d -= c.Dur
	}
	if d < 0 {
		d = 0 // overlapping wall-clock children can oversubscribe the parent
	}
	return d
}

// Trace is the reconstructed span forest of one run.
type Trace struct {
	Roots []*Span
	// Spans counts every reconstructed span (the forest's size).
	Spans int
}

// chromeEvent is the subset of the trace_event schema the exporter emits.
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	TS   int64             `json:"ts"`
	Dur  int64             `json:"dur"`
	Args map[string]string `json:"args"`
}

type chromeFile struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

// ParseChromeTrace rebuilds the span forest from Chrome trace_event JSON
// (the format telemetry.WriteChromeTrace emits). Nesting is recovered
// from interval containment: events arrive in pre-order, so a span whose
// interval lies inside the open span on top of the stack is its child.
// Instant ("i") events increment the enclosing span's Events count.
func ParseChromeTrace(data []byte) (*Trace, error) {
	var file chromeFile
	if err := json.Unmarshal(data, &file); err != nil {
		return nil, fmt.Errorf("obs: parse trace: %w", err)
	}
	tr := &Trace{}
	var stack []*Span
	top := func() *Span {
		if len(stack) == 0 {
			return nil
		}
		return stack[len(stack)-1]
	}
	for _, ev := range file.TraceEvents {
		// Close finished spans: anything whose interval ended at or
		// before this event's timestamp.
		for t := top(); t != nil && ev.TS >= t.End(); t = top() {
			stack = stack[:len(stack)-1]
		}
		switch ev.Ph {
		case "X":
			s := &Span{Name: ev.Name, Start: ev.TS, Dur: ev.Dur, SimAt: ev.Args["sim_at"]}
			if p := top(); p != nil {
				p.Children = append(p.Children, s)
			} else {
				tr.Roots = append(tr.Roots, s)
			}
			stack = append(stack, s)
			tr.Spans++
		case "i":
			if p := top(); p != nil {
				p.Events++
			}
		}
	}
	return tr, nil
}

// Stage normalizes a span name to its phase: per-epoch roots like
// "epoch 003 goldilocks" collapse to "epoch" and per-shard pipeline roots
// like "shard 003" collapse to "shard", so rollups aggregate across epochs,
// policies and shards; every other span name is already a fixed phase word
// ("partition", "wave", "vc-place", ...).
func Stage(name string) string {
	if strings.HasPrefix(name, "epoch ") {
		return "epoch"
	}
	if strings.HasPrefix(name, "shard ") {
		return "shard"
	}
	return name
}

// EpochRoot reports whether the span is a per-epoch root and, if so, its
// epoch number and policy (parsed from the "epoch %03d %s" name).
func EpochRoot(s *Span) (epoch int, policy string, ok bool) {
	var n int
	if _, err := fmt.Sscanf(s.Name, "epoch %d %s", &n, &policy); err != nil {
		return 0, "", false
	}
	return n, policy, true
}

// ShardRoot reports whether the span is a per-shard pipeline root of the
// sharded partitioner and, if so, its shard index (parsed from the
// "shard %03d" name). The Chrome trace keeps only the sim_at arg, so the
// span name is the only carrier of the shard identity.
func ShardRoot(s *Span) (shard int, ok bool) {
	if _, err := fmt.Sscanf(s.Name, "shard %d", &shard); err != nil {
		return 0, false
	}
	return shard, true
}
