package obs

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"goldilocks/internal/cluster"
	"goldilocks/internal/journal"
)

// Canonical artifact file names inside a run directory — the names the
// Makefile/CI targets and inspect-guard write. A journal is any *.wal in
// the directory (crashchaos writes <dir>/crashchaos.wal, so a -journal
// directory doubles as a run directory).
const (
	TraceFile   = "trace.json"
	MetricsFile = "metrics.prom"
	AuditFile   = "audit.txt"
)

// Run is one run's loaded artifact set. Every artifact is optional: a
// missing file leaves its field nil, and each analysis declares what it
// needs.
type Run struct {
	Dir string
	// Raw artifact bytes (nil when the file is absent).
	TraceData   []byte
	MetricsData []byte
	AuditData   []byte
	// JournalPath is the discovered *.wal (first in name order), "" when
	// none; Records its raw framed records; View its decoded form.
	JournalPath string
	Records     []journal.Raw
	View        *cluster.JournalView
}

// Reports returns the journaled EpochReport stream (nil without a journal).
func (r *Run) Reports() []cluster.EpochReport {
	if r.View == nil {
		return nil
	}
	return r.View.Reports
}

// LoadRun loads the artifacts found in dir. Only the journal is decoded
// eagerly (the report stream feeds diff and slo); trace bytes are parsed
// on demand by the analysis that needs the span tree.
func LoadRun(dir string) (*Run, error) {
	info, err := os.Stat(dir)
	if err != nil {
		return nil, fmt.Errorf("obs: load run: %w", err)
	}
	if !info.IsDir() {
		return nil, fmt.Errorf("obs: load run: %s is not a directory", dir)
	}
	run := &Run{Dir: dir}
	read := func(name string) []byte {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil
		}
		return data
	}
	run.TraceData = read(TraceFile)
	run.MetricsData = read(MetricsFile)
	run.AuditData = read(AuditFile)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("obs: load run: %w", err)
	}
	var wals []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".wal") {
			wals = append(wals, e.Name())
		}
	}
	sort.Strings(wals)
	if len(wals) > 0 {
		run.JournalPath = filepath.Join(dir, wals[0])
		recs, _, _, err := journal.ReadFile(run.JournalPath, nil)
		if err != nil {
			return nil, fmt.Errorf("obs: journal %s: %w", run.JournalPath, err)
		}
		run.Records = recs
		view, err := cluster.ReadJournal(run.JournalPath)
		if err != nil {
			return nil, fmt.Errorf("obs: journal %s: %w", run.JournalPath, err)
		}
		run.View = &view
	}
	return run, nil
}

// Trace parses the run's Chrome trace (nil, nil when absent).
func (r *Run) Trace() (*Trace, error) {
	if r.TraceData == nil {
		return nil, nil
	}
	return ParseChromeTrace(r.TraceData)
}
