package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"goldilocks/internal/cluster"
	"goldilocks/internal/telemetry"
)

// Ops is the live ops endpoint behind goldilocks-sim -serve: read-only
// HTTP views over a running session. It observes the deterministic core
// without touching it — the epoch loop publishes each sealed report
// through Session.ReportSink (value copies; EpochReport has no reference
// fields), and /metrics snapshots the registry, which is already safe for
// concurrent reads.
//
// Ops itself starts no goroutines (the caller owns the http.Server and
// its listener), which keeps this package inside the determinism lint
// set: the handlers are pure reads over mutex-guarded snapshots.
type Ops struct {
	sess *telemetry.Session

	mu      sync.Mutex
	reports []cluster.EpochReport
}

// NewOps wires an Ops onto the session: its ReportSink is installed so
// every sealed epoch report lands in the /epochz stream. Install before
// the run starts (the epoch loop reads ReportSink unlocked).
func NewOps(sess *telemetry.Session) *Ops {
	o := &Ops{sess: sess}
	if sess != nil {
		sess.ReportSink = o.sink
	}
	return o
}

// sink receives one sealed epoch report from the cluster runner.
func (o *Ops) sink(rep any) {
	r, ok := rep.(cluster.EpochReport)
	if !ok {
		return
	}
	o.mu.Lock()
	o.reports = append(o.reports, r)
	o.mu.Unlock()
}

// Reports returns a copy of the epoch reports received so far.
func (o *Ops) Reports() []cluster.EpochReport {
	o.mu.Lock()
	defer o.mu.Unlock()
	return append([]cluster.EpochReport(nil), o.reports...)
}

// Handler returns the ops mux:
//
//	/healthz  liveness plus the epoch count, text/plain
//	/metrics  the session registry, Prometheus text format
//	/epochz   the sealed epoch reports, one JSON object per line (NDJSON)
func (o *Ops) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		o.mu.Lock()
		n := len(o.reports)
		o.mu.Unlock()
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "ok epochs=%d\n", n)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		var reg *telemetry.Registry
		if o.sess != nil {
			reg = o.sess.Metrics
		}
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/epochz", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		for _, rep := range o.Reports() {
			if err := enc.Encode(rep); err != nil {
				return
			}
		}
	})
	return mux
}
