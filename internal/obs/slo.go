package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"goldilocks/internal/cluster"
)

// SLOConfig sets the objectives the burn tracker holds the epoch stream
// to. The zero value is replaced field-by-field with DefaultSLOConfig.
type SLOConfig struct {
	// Window is the rolling-window length in epochs.
	Window int `json:"window"`
	// Availability is the availability objective (e.g. 0.999): each
	// epoch's error budget is 1 - Availability, and an epoch burns
	// (1 - report availability) of it.
	Availability float64 `json:"availability"`
	// RecoveryTimeS is the per-epoch recovery-time objective in seconds:
	// an epoch burns RecoveryTimeS_report / RecoveryTimeS of budget.
	RecoveryTimeS float64 `json:"recovery_time_s"`
	// SolveDeadlineMS is the modeled-solve deadline; SolveBudget is the
	// tolerated fraction of epochs over it (e.g. 0.05). An epoch over the
	// deadline burns 1/SolveBudget of the solve budget.
	SolveDeadlineMS float64 `json:"solve_deadline_ms"`
	SolveBudget     float64 `json:"solve_budget"`
}

// DefaultSLOConfig matches the crashchaos cell: a three-nines
// availability target, 30 s of tolerated recovery per epoch, and at most
// 5% of epochs over the 40 ms solve deadline.
func DefaultSLOConfig() SLOConfig {
	return SLOConfig{
		Window:          5,
		Availability:    0.999,
		RecoveryTimeS:   30,
		SolveDeadlineMS: 40,
		SolveBudget:     0.05,
	}
}

func (c SLOConfig) withDefaults() SLOConfig {
	def := DefaultSLOConfig()
	if c.Window <= 0 {
		c.Window = def.Window
	}
	if c.Availability <= 0 || c.Availability >= 1 {
		c.Availability = def.Availability
	}
	if c.RecoveryTimeS <= 0 {
		c.RecoveryTimeS = def.RecoveryTimeS
	}
	if c.SolveDeadlineMS <= 0 {
		c.SolveDeadlineMS = def.SolveDeadlineMS
	}
	if c.SolveBudget <= 0 || c.SolveBudget > 1 {
		c.SolveBudget = def.SolveBudget
	}
	return c
}

// SLOEpoch is one epoch's burn accounting: each burn rate is budget
// consumed over budget allowed, averaged over the trailing window — 1.0
// means the window exactly exhausts its error budget, above it the
// objective is being missed.
type SLOEpoch struct {
	Epoch        int     `json:"epoch"`
	AvailBurn    float64 `json:"avail_burn"`
	RecoveryBurn float64 `json:"recovery_burn"`
	SolveBurn    float64 `json:"solve_burn"`
	// Breach marks a window whose worst burn rate exceeds 1.
	Breach bool `json:"breach"`
}

// SLOReport is the burn-tracker output over one EpochReport stream.
type SLOReport struct {
	Config SLOConfig  `json:"config"`
	Epochs []SLOEpoch `json:"epochs"`
	// Peak burns across all windows, and the epochs they occurred at.
	PeakAvailBurn     float64 `json:"peak_avail_burn"`
	PeakAvailEpoch    int     `json:"peak_avail_epoch"`
	PeakRecoveryBurn  float64 `json:"peak_recovery_burn"`
	PeakRecoveryEpoch int     `json:"peak_recovery_epoch"`
	PeakSolveBurn     float64 `json:"peak_solve_burn"`
	PeakSolveEpoch    int     `json:"peak_solve_epoch"`
	// Breaches counts epochs whose window breached any objective.
	Breaches int `json:"breaches"`
}

// TrackSLO computes rolling-window burn rates over the journaled epoch
// stream. Deterministic: a pure function of (reports, config).
func TrackSLO(reports []cluster.EpochReport, cfg SLOConfig) *SLOReport {
	cfg = cfg.withDefaults()
	rep := &SLOReport{Config: cfg, PeakAvailEpoch: -1, PeakRecoveryEpoch: -1, PeakSolveEpoch: -1}
	availBudget := 1 - cfg.Availability
	// Per-epoch instantaneous burns; window burn is their trailing mean.
	avail := make([]float64, len(reports))
	recov := make([]float64, len(reports))
	solve := make([]float64, len(reports))
	for i, r := range reports {
		avail[i] = (1 - r.Availability) / availBudget
		recov[i] = r.RecoveryTimeS / cfg.RecoveryTimeS
		if r.ModeledSolveMS > cfg.SolveDeadlineMS {
			solve[i] = 1 / cfg.SolveBudget
		}
	}
	mean := func(xs []float64, lo, hi int) float64 {
		s := 0.0
		for _, x := range xs[lo:hi] {
			s += x
		}
		return s / float64(hi-lo)
	}
	for i, r := range reports {
		lo := i + 1 - cfg.Window
		if lo < 0 {
			lo = 0
		}
		e := SLOEpoch{
			Epoch:        r.Epoch,
			AvailBurn:    mean(avail, lo, i+1),
			RecoveryBurn: mean(recov, lo, i+1),
			SolveBurn:    mean(solve, lo, i+1),
		}
		e.Breach = e.AvailBurn > 1 || e.RecoveryBurn > 1 || e.SolveBurn > 1
		if e.Breach {
			rep.Breaches++
		}
		if e.AvailBurn > rep.PeakAvailBurn {
			rep.PeakAvailBurn, rep.PeakAvailEpoch = e.AvailBurn, e.Epoch
		}
		if e.RecoveryBurn > rep.PeakRecoveryBurn {
			rep.PeakRecoveryBurn, rep.PeakRecoveryEpoch = e.RecoveryBurn, e.Epoch
		}
		if e.SolveBurn > rep.PeakSolveBurn {
			rep.PeakSolveBurn, rep.PeakSolveEpoch = e.SolveBurn, e.Epoch
		}
		rep.Epochs = append(rep.Epochs, e)
	}
	return rep
}

// WriteText renders the burn report.
func (r *SLOReport) WriteText(w io.Writer) error {
	var buf bytes.Buffer
	c := r.Config
	fmt.Fprintf(&buf, "slo: %d epochs, window=%d, objectives: availability=%.4f recovery<=%.0fs solve<=%.0fms (budget %.0f%%)\n",
		len(r.Epochs), c.Window, c.Availability, c.RecoveryTimeS, c.SolveDeadlineMS, c.SolveBudget*100)
	for _, e := range r.Epochs {
		mark := ""
		if e.Breach {
			mark = "  BREACH"
		}
		fmt.Fprintf(&buf, "epoch %03d avail-burn=%.3f recovery-burn=%.3f solve-burn=%.3f%s\n",
			e.Epoch, e.AvailBurn, e.RecoveryBurn, e.SolveBurn, mark)
	}
	fmt.Fprintf(&buf, "peak: avail=%.3f@%d recovery=%.3f@%d solve=%.3f@%d; breached windows: %d/%d\n",
		r.PeakAvailBurn, r.PeakAvailEpoch, r.PeakRecoveryBurn, r.PeakRecoveryEpoch,
		r.PeakSolveBurn, r.PeakSolveEpoch, r.Breaches, len(r.Epochs))
	_, err := w.Write(buf.Bytes())
	return err
}

// WriteJSON renders the burn report machine-readably.
func (r *SLOReport) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
