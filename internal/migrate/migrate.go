// Package migrate models the container migration machinery of the paper's
// implementation (§V): at each epoch boundary, containers whose assignment
// changed are checkpointed (CRIU writes the process image), their images
// are transferred to the destination servers (rsync over the overlay), and
// they are restored. The package plans the moves between two placements,
// schedules them into waves that never ask one server to source or sink
// two transfers at once (a NIC-saturating rsync leaves no room for a
// second), and simulates the transfer timing over the topology with the
// flow-level network simulator.
//
// The disruption accounting mirrors the costs the paper cites: application
// freeze time (the final dirty-page copy while the container is stopped)
// and total migration traffic.
package migrate

import (
	"fmt"
	"sort"
	"time"

	"goldilocks/internal/netsim"
	"goldilocks/internal/resources"
	"goldilocks/internal/telemetry"
	"goldilocks/internal/topology"
	"goldilocks/internal/workload"
)

// Move is one container migration.
type Move struct {
	Container int
	From, To  int
	// ImageMB is the checkpoint image size (the container's resident
	// memory).
	ImageMB float64
}

// Options tunes the migration model.
type Options struct {
	// DirtyFraction is the share of the image re-copied during the
	// stop-and-copy phase; it determines freeze time. CRIU's single-pass
	// checkpoint freezes for the whole image (1.0); pre-copy live
	// migration gets this down to the dirty working set.
	DirtyFraction float64
	// DiskMBps is the local checkpoint write/read bandwidth.
	DiskMBps float64
	// NetSim configures the transfer simulation.
	NetSim netsim.Options
	// TolerateStuck reports transfers that cannot complete (a failed
	// server or dead link on the path) in Report.StuckMoves instead of
	// failing the whole simulation. The caller is expected to Replan the
	// stuck moves against the surviving topology — they must never be
	// silently dropped.
	TolerateStuck bool
	// Retry configures seeded transient-failure retries with exponential
	// backoff. The zero value is byte-identical to the legacy
	// single-attempt path.
	Retry RetryPolicy
	// Trace, when non-nil, is the parent span Simulate hangs its per-wave
	// spans under (each wave's netsim run nests beneath it). The pointer
	// keeps Options comparable; nil costs nothing.
	Trace *telemetry.Span
}

// DefaultOptions models the testbed: CRIU single-pass checkpoints to a
// local SSD, images moved with rsync.
func DefaultOptions() Options {
	return Options{
		DirtyFraction: 0.15, // rsync pre-syncs the volume; CRIU re-copies the hot pages
		DiskMBps:      400,
		NetSim:        netsim.DefaultOptions(),
	}
}

// Plan is a set of moves scheduled into waves. Within one wave no server
// appears as source or destination of more than one transfer.
type Plan struct {
	Moves []Move
	// Waves holds indices into Moves.
	Waves [][]int
}

// Report summarizes a simulated plan execution.
type Report struct {
	NumMoves     int
	TotalImageMB float64
	// Duration is the end-to-end wall time of all waves.
	Duration time.Duration
	// MeanFreeze/MaxFreeze are per-container stop-and-copy times.
	MeanFreeze time.Duration
	MaxFreeze  time.Duration
	Waves      int
	// Stuck counts transfers that could not complete; StuckMoves holds
	// their indices into Plan.Moves, ascending. Only populated under
	// Options.TolerateStuck — otherwise a stuck transfer is an error.
	Stuck      int
	StuckMoves []int
	// Retries counts failed transfer attempts across the plan (each one
	// either triggered a backoff-and-retry or, on the last allowed
	// attempt, exhaustion). Zero unless Options.Retry is enabled.
	Retries int
	// Exhausted counts transfers whose every attempt failed;
	// ExhaustedMoves holds their indices into Plan.Moves, ascending.
	// Exhausted transfers never enter the network simulation and their
	// images do not count toward TotalImageMB — the caller must account
	// them (the cluster loop reverts the container to its source server
	// and reports it as a dropped migration).
	Exhausted      int
	ExhaustedMoves []int
}

// PlanMoves diffs two placements over the same spec and returns the moves.
// Containers absent from either placement (-1) are skipped: arrivals and
// departures start fresh rather than migrate.
func PlanMoves(spec *workload.Spec, oldPlace, newPlace []int) ([]Move, error) {
	if len(oldPlace) != len(spec.Containers) || len(newPlace) != len(spec.Containers) {
		return nil, fmt.Errorf("migrate: placements cover %d/%d containers, spec has %d",
			len(oldPlace), len(newPlace), len(spec.Containers))
	}
	var moves []Move
	for i := range spec.Containers {
		from, to := oldPlace[i], newPlace[i]
		if from < 0 || to < 0 || from == to {
			continue
		}
		moves = append(moves, Move{
			Container: i,
			From:      from,
			To:        to,
			ImageMB:   spec.Containers[i].Demand[resources.Memory],
		})
	}
	return moves, nil
}

// Schedule packs moves into waves: a greedy maximal matching on servers,
// biggest images first so the long transfers overlap with as many short
// ones as possible.
func Schedule(moves []Move) *Plan {
	order := make([]int, len(moves))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return moves[order[a]].ImageMB > moves[order[b]].ImageMB
	})
	plan := &Plan{Moves: moves}
	scheduled := make([]bool, len(moves))
	remaining := len(moves)
	for remaining > 0 {
		busy := make(map[int]bool)
		var wave []int
		for _, mi := range order {
			if scheduled[mi] {
				continue
			}
			m := moves[mi]
			if busy[m.From] || busy[m.To] {
				continue
			}
			busy[m.From] = true
			busy[m.To] = true
			wave = append(wave, mi)
			scheduled[mi] = true
			remaining--
		}
		plan.Waves = append(plan.Waves, wave)
	}
	return plan
}

// Simulate executes the plan's transfers over the topology with the
// flow-level simulator, wave by wave, and returns the disruption report.
func Simulate(topo *topology.Topology, plan *Plan, opts Options) (Report, error) {
	if opts.DiskMBps <= 0 {
		opts.DiskMBps = DefaultOptions().DiskMBps
	}
	if opts.DirtyFraction <= 0 || opts.DirtyFraction > 1 {
		opts.DirtyFraction = DefaultOptions().DirtyFraction
	}
	mspan := opts.Trace.Child("migrate")
	mspan.SetInt("moves", len(plan.Moves))
	mspan.SetInt("waves", len(plan.Waves))
	defer mspan.End()
	rep := Report{NumMoves: len(plan.Moves), Waves: len(plan.Waves)}
	var totalFreeze time.Duration
	var clock time.Duration
	for wi, wave := range plan.Waves {
		wspan := mspan.Child("wave")
		wspan.SetInt("wave", wi)
		wspan.SetInt("transfers", len(wave))
		nsOpts := opts.NetSim
		nsOpts.Trace = wspan
		sim := netsim.New(topo, nsOpts)
		ids := make(map[netsim.FlowID]int, len(wave))
		waveRetries := 0
		for _, mi := range wave {
			m := plan.Moves[mi]
			// Resolve the retry ladder: failed attempts delay the
			// injection by their accumulated backoff; a transfer that
			// exhausts every attempt never reaches the network.
			start, failed, ok := opts.Retry.planAttempts(m.Container)
			waveRetries += failed
			if !ok {
				rep.ExhaustedMoves = append(rep.ExhaustedMoves, mi)
				continue
			}
			rep.TotalImageMB += m.ImageMB
			id := sim.Inject(start, m.From, m.To, m.ImageMB*1e6)
			ids[id] = mi
		}
		rep.Retries += waveRetries
		done, stuck := sim.Run()
		if len(stuck) > 0 {
			if !opts.TolerateStuck {
				wspan.SetStr("error", "stuck transfers")
				wspan.End()
				return rep, fmt.Errorf("migrate: %d transfers cannot complete (dead links)", len(stuck))
			}
			for _, id := range stuck {
				rep.StuckMoves = append(rep.StuckMoves, ids[id])
			}
		}
		waveEnd := time.Duration(0)
		for _, c := range done {
			mi := ids[c.ID]
			m := plan.Moves[mi]
			// Freeze: checkpoint write + dirty-copy share of the
			// transfer + restore read.
			diskS := 2 * m.ImageMB / opts.DiskMBps * opts.DirtyFraction
			freeze := time.Duration(diskS*float64(time.Second)) +
				time.Duration(float64(c.FCT())*opts.DirtyFraction)
			totalFreeze += freeze
			if freeze > rep.MaxFreeze {
				rep.MaxFreeze = freeze
			}
			if c.Finish > waveEnd {
				waveEnd = c.Finish
			}
		}
		clock += waveEnd
		wspan.SetDuration("wave_duration", waveEnd)
		wspan.SetInt("stuck", len(stuck))
		wspan.SetInt("retries", waveRetries)
		wspan.End()
	}
	rep.Duration = clock
	sort.Ints(rep.StuckMoves)
	rep.Stuck = len(rep.StuckMoves)
	sort.Ints(rep.ExhaustedMoves)
	rep.Exhausted = len(rep.ExhaustedMoves)
	if rep.NumMoves > 0 {
		rep.MeanFreeze = totalFreeze / time.Duration(rep.NumMoves)
	}
	return rep, nil
}

// Replan rebuilds the stuck moves of a plan after mid-transfer failures.
// stuckMoves indexes plan.Moves (Report.StuckMoves from a tolerant
// Simulate); newPlace is the fresh placement the policy produced on the
// surviving topology, indexed by container. Each stuck move lands in
// exactly one of the three outcomes — nothing is silently dropped:
//
//   - replanned: source alive, new destination alive and different — the
//     checkpoint image transfers again, now to newPlace[container].
//   - restarts: the source failed (the checkpoint image died with it) or
//     the container is re-placed back onto its surviving source; either
//     way the container restarts in place at its new server with no
//     network transfer. The restart cost is the cluster recovery loop's
//     to account, not a migration.
//   - dropped: newPlace rejects the container (-1, admission control) —
//     returned explicitly so the caller can account the rejection.
//
// A stuck move whose new destination is itself a failed server is a
// contract violation by the caller's policy and returns an error.
func Replan(topo *topology.Topology, plan *Plan, stuckMoves []int, newPlace []int) (replanned *Plan, restarts []Move, dropped []int, err error) {
	var moves []Move
	for _, mi := range stuckMoves {
		if mi < 0 || mi >= len(plan.Moves) {
			return nil, nil, nil, fmt.Errorf("migrate: stuck move index %d out of range [0,%d)", mi, len(plan.Moves))
		}
		m := plan.Moves[mi]
		if m.Container < 0 || m.Container >= len(newPlace) {
			return nil, nil, nil, fmt.Errorf("migrate: container %d not covered by the new placement", m.Container)
		}
		dst := newPlace[m.Container]
		if dst < 0 {
			dropped = append(dropped, m.Container)
			continue
		}
		if topo.ServerFailed(dst) {
			return nil, nil, nil, fmt.Errorf("migrate: replanned destination %d for container %d is a failed server", dst, m.Container)
		}
		if topo.ServerFailed(m.From) || dst == m.From {
			restarts = append(restarts, Move{Container: m.Container, From: m.From, To: dst, ImageMB: m.ImageMB})
			continue
		}
		moves = append(moves, Move{Container: m.Container, From: m.From, To: dst, ImageMB: m.ImageMB})
	}
	sort.Ints(dropped)
	return Schedule(moves), restarts, dropped, nil
}

// PlanAndSimulate is the convenience path: diff, schedule, simulate.
func PlanAndSimulate(topo *topology.Topology, spec *workload.Spec, oldPlace, newPlace []int, opts Options) (Report, error) {
	moves, err := PlanMoves(spec, oldPlace, newPlace)
	if err != nil {
		return Report{}, err
	}
	return Simulate(topo, Schedule(moves), opts)
}
