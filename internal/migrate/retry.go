// Seeded retry/backoff for migration transfers. Real checkpoint transfers
// fail transiently — an rsync connection reset, a briefly flapping link —
// and the control plane retries them with exponential backoff rather than
// abandoning the move. The model here keeps the simulator's determinism
// contract: whether an attempt fails, and how long its backoff jitter is,
// are pure functions of (Seed, container, attempt) drawn from a
// splitmix64-style stream, never from wall clock or global randomness, so
// the report stream is bit-identical across partitioner parallelism
// levels and across crash/resume re-execution.
package migrate

import "time"

// RetryPolicy configures transfer retries. The zero value disables the
// machinery entirely: one attempt, no failure draws, injection at time 0
// — byte-identical to the pre-retry simulator.
type RetryPolicy struct {
	// MaxAttempts is the total tries per transfer (first attempt
	// included). Values below 1 mean 1. A transfer that fails all of its
	// attempts is *exhausted*: it never enters the network simulation and
	// is surfaced in Report.ExhaustedMoves — never silently dropped.
	MaxAttempts int
	// BaseBackoff is the delay after the first failure; each subsequent
	// failure doubles it. Non-positive means 1s.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth. Non-positive means uncapped.
	MaxBackoff time.Duration
	// FlakeProb is the independent per-attempt failure probability in
	// [0,1]. Zero disables failure draws completely.
	FlakeProb float64
	// Seed drives the failure and jitter draws. Same (Seed, container,
	// attempt) ⇒ same outcome, on any host, at any parallelism.
	Seed uint64
}

// enabled reports whether the policy can change anything relative to the
// legacy single-attempt path.
func (p RetryPolicy) enabled() bool { return p.FlakeProb > 0 }

// Draw-stream salts keep the failure and jitter streams independent.
const (
	saltFail   = 0xF1A7E
	saltJitter = 0x117E12
)

// mix64 is the splitmix64 finalizer: a bijective avalanche over 64 bits.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// draw folds the policy seed, container, attempt, and salt into a uniform
// value in [0, 1).
func (p RetryPolicy) draw(container, attempt int, salt uint64) float64 {
	h := mix64(p.Seed ^ salt)
	h = mix64(h ^ uint64(uint32(int32(container))))
	h = mix64(h ^ uint64(uint32(int32(attempt)))<<32)
	return float64(h>>11) / float64(uint64(1)<<53)
}

// attemptFails decides attempt (0-indexed) for container's transfer.
func (p RetryPolicy) attemptFails(container, attempt int) bool {
	if !p.enabled() {
		return false
	}
	return p.draw(container, attempt, saltFail) < p.FlakeProb
}

// backoff returns the jittered delay charged before attempt (1-indexed
// retry): min(BaseBackoff·2^(attempt−1), MaxBackoff) scaled by a
// deterministic jitter in [0.5, 1).
func (p RetryPolicy) backoff(container, attempt int) time.Duration {
	base := p.BaseBackoff
	if base <= 0 {
		base = time.Second
	}
	d := base
	for i := 1; i < attempt; i++ {
		d *= 2
		if p.MaxBackoff > 0 && d >= p.MaxBackoff {
			d = p.MaxBackoff
			break
		}
	}
	if p.MaxBackoff > 0 && d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	u := p.draw(container, attempt, saltJitter)
	return time.Duration(float64(d) * (0.5 + 0.5*u))
}

// planAttempts resolves the whole retry ladder for one transfer up front
// (the draws are pure, so nothing is gained by interleaving them with the
// network simulation): the injection offset accumulated from backoffs,
// how many attempts failed, and whether any attempt succeeded.
func (p RetryPolicy) planAttempts(container int) (start time.Duration, failed int, ok bool) {
	max := p.MaxAttempts
	if max < 1 {
		max = 1
	}
	var delay time.Duration
	for a := 0; a < max; a++ {
		if a > 0 {
			delay += p.backoff(container, a)
		}
		if !p.attemptFails(container, a) {
			return delay, a, true
		}
	}
	return 0, max, false
}
