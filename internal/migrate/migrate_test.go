package migrate

import (
	"testing"
	"time"

	"goldilocks/internal/resources"
	"goldilocks/internal/topology"
	"goldilocks/internal/workload"
)

func spec3(t *testing.T, memMB float64) *workload.Spec {
	t.Helper()
	s := &workload.Spec{}
	for i := 0; i < 3; i++ {
		s.Containers = append(s.Containers, workload.Container{
			ID: i, Demand: resources.New(10, memMB, 5),
		})
	}
	return s
}

func TestPlanMovesDiffs(t *testing.T) {
	s := spec3(t, 1024)
	moves, err := PlanMoves(s, []int{0, 1, 2}, []int{0, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) != 1 {
		t.Fatalf("moves = %d, want 1", len(moves))
	}
	if moves[0].Container != 1 || moves[0].From != 1 || moves[0].To != 2 {
		t.Fatalf("move = %+v", moves[0])
	}
	if moves[0].ImageMB != 1024 {
		t.Fatalf("image = %v MB", moves[0].ImageMB)
	}
}

func TestPlanMovesSkipsArrivalsAndDepartures(t *testing.T) {
	s := spec3(t, 512)
	moves, err := PlanMoves(s, []int{-1, 1, 2}, []int{0, -1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) != 0 {
		t.Fatalf("arrival/departure produced %d moves", len(moves))
	}
}

func TestPlanMovesLengthMismatch(t *testing.T) {
	s := spec3(t, 512)
	if _, err := PlanMoves(s, []int{0}, []int{0, 1, 2}); err == nil {
		t.Fatal("length mismatch must error")
	}
}

func TestScheduleWavesAvoidServerConflicts(t *testing.T) {
	moves := []Move{
		{Container: 0, From: 0, To: 1, ImageMB: 100},
		{Container: 1, From: 0, To: 2, ImageMB: 200}, // shares source with move 0
		{Container: 2, From: 3, To: 4, ImageMB: 50},  // disjoint
		{Container: 3, From: 5, To: 1, ImageMB: 70},  // shares dest with move 0
	}
	plan := Schedule(moves)
	total := 0
	for _, wave := range plan.Waves {
		busy := map[int]bool{}
		for _, mi := range wave {
			m := plan.Moves[mi]
			if busy[m.From] || busy[m.To] {
				t.Fatalf("server conflict within a wave: %+v", m)
			}
			busy[m.From] = true
			busy[m.To] = true
			total++
		}
	}
	if total != len(moves) {
		t.Fatalf("scheduled %d of %d moves", total, len(moves))
	}
	if len(plan.Waves) < 2 {
		t.Fatal("conflicting moves require at least two waves")
	}
}

func TestScheduleEmpty(t *testing.T) {
	plan := Schedule(nil)
	if len(plan.Waves) != 0 {
		t.Fatal("no moves, no waves")
	}
}

func TestSimulateSingleTransfer(t *testing.T) {
	topo := topology.NewTestbed()                                  // 1G NICs
	moves := []Move{{Container: 0, From: 0, To: 1, ImageMB: 1250}} // 10 Gbit → 10 s at line rate
	rep, err := Simulate(topo, Schedule(moves), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rep.NumMoves != 1 || rep.Waves != 1 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Duration < 9*time.Second || rep.Duration > 12*time.Second {
		t.Fatalf("1250 MB over 1G should take ≈10s, got %v", rep.Duration)
	}
	if rep.MeanFreeze <= 0 || rep.MaxFreeze < rep.MeanFreeze {
		t.Fatalf("freeze accounting broken: %+v", rep)
	}
	// Freeze is a fraction of the full migration, not all of it.
	if rep.MaxFreeze >= rep.Duration {
		t.Fatalf("freeze %v must be below total duration %v", rep.MaxFreeze, rep.Duration)
	}
}

func TestSimulateParallelWave(t *testing.T) {
	topo := topology.NewTestbed()
	// Two disjoint transfers run in one wave concurrently: total duration
	// ≈ the slower one, not the sum.
	moves := []Move{
		{Container: 0, From: 0, To: 1, ImageMB: 1250},
		{Container: 1, From: 2, To: 3, ImageMB: 1250},
	}
	rep, err := Simulate(topo, Schedule(moves), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Waves != 1 {
		t.Fatalf("waves = %d, want 1 (disjoint servers)", rep.Waves)
	}
	if rep.Duration > 13*time.Second {
		t.Fatalf("parallel transfers took %v, want ≈10s", rep.Duration)
	}
}

func TestSimulateDeadLink(t *testing.T) {
	topo := topology.NewTestbed()
	rack := topo.SubtreesAtLevel(topology.LevelRack)[0]
	if err := topo.FailUplinkFraction(rack, 1.0); err != nil {
		t.Fatal(err)
	}
	src := rack.ServerIDs[0]
	moves := []Move{{Container: 0, From: src, To: 15, ImageMB: 10}}
	if _, err := Simulate(topo, Schedule(moves), DefaultOptions()); err == nil {
		t.Fatal("transfer across a dead uplink must error")
	}
}

func TestPlanAndSimulateEndToEnd(t *testing.T) {
	topo := topology.NewTestbed()
	s := &workload.Spec{}
	for i := 0; i < 8; i++ {
		s.Containers = append(s.Containers, workload.Container{
			ID: i, Demand: resources.New(10, 512, 5),
		})
	}
	oldPlace := []int{0, 0, 1, 1, 2, 2, 3, 3}
	newPlace := []int{0, 4, 1, 5, 2, 6, 3, 7} // four containers move
	rep, err := PlanAndSimulate(topo, s, oldPlace, newPlace, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rep.NumMoves != 4 {
		t.Fatalf("moves = %d, want 4", rep.NumMoves)
	}
	if rep.TotalImageMB != 4*512 {
		t.Fatalf("image total = %v", rep.TotalImageMB)
	}
	if rep.Duration <= 0 {
		t.Fatal("zero duration")
	}
}
