package migrate

import (
	"testing"
	"time"

	"goldilocks/internal/resources"
	"goldilocks/internal/topology"
	"goldilocks/internal/workload"
)

func spec3(t *testing.T, memMB float64) *workload.Spec {
	t.Helper()
	s := &workload.Spec{}
	for i := 0; i < 3; i++ {
		s.Containers = append(s.Containers, workload.Container{
			ID: i, Demand: resources.New(10, memMB, 5),
		})
	}
	return s
}

func TestPlanMovesDiffs(t *testing.T) {
	s := spec3(t, 1024)
	moves, err := PlanMoves(s, []int{0, 1, 2}, []int{0, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) != 1 {
		t.Fatalf("moves = %d, want 1", len(moves))
	}
	if moves[0].Container != 1 || moves[0].From != 1 || moves[0].To != 2 {
		t.Fatalf("move = %+v", moves[0])
	}
	if moves[0].ImageMB != 1024 {
		t.Fatalf("image = %v MB", moves[0].ImageMB)
	}
}

func TestPlanMovesSkipsArrivalsAndDepartures(t *testing.T) {
	s := spec3(t, 512)
	moves, err := PlanMoves(s, []int{-1, 1, 2}, []int{0, -1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) != 0 {
		t.Fatalf("arrival/departure produced %d moves", len(moves))
	}
}

func TestPlanMovesLengthMismatch(t *testing.T) {
	s := spec3(t, 512)
	if _, err := PlanMoves(s, []int{0}, []int{0, 1, 2}); err == nil {
		t.Fatal("length mismatch must error")
	}
}

func TestScheduleWavesAvoidServerConflicts(t *testing.T) {
	moves := []Move{
		{Container: 0, From: 0, To: 1, ImageMB: 100},
		{Container: 1, From: 0, To: 2, ImageMB: 200}, // shares source with move 0
		{Container: 2, From: 3, To: 4, ImageMB: 50},  // disjoint
		{Container: 3, From: 5, To: 1, ImageMB: 70},  // shares dest with move 0
	}
	plan := Schedule(moves)
	total := 0
	for _, wave := range plan.Waves {
		busy := map[int]bool{}
		for _, mi := range wave {
			m := plan.Moves[mi]
			if busy[m.From] || busy[m.To] {
				t.Fatalf("server conflict within a wave: %+v", m)
			}
			busy[m.From] = true
			busy[m.To] = true
			total++
		}
	}
	if total != len(moves) {
		t.Fatalf("scheduled %d of %d moves", total, len(moves))
	}
	if len(plan.Waves) < 2 {
		t.Fatal("conflicting moves require at least two waves")
	}
}

func TestScheduleEmpty(t *testing.T) {
	plan := Schedule(nil)
	if len(plan.Waves) != 0 {
		t.Fatal("no moves, no waves")
	}
}

func TestSimulateSingleTransfer(t *testing.T) {
	topo := topology.NewTestbed()                                  // 1G NICs
	moves := []Move{{Container: 0, From: 0, To: 1, ImageMB: 1250}} // 10 Gbit → 10 s at line rate
	rep, err := Simulate(topo, Schedule(moves), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rep.NumMoves != 1 || rep.Waves != 1 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Duration < 9*time.Second || rep.Duration > 12*time.Second {
		t.Fatalf("1250 MB over 1G should take ≈10s, got %v", rep.Duration)
	}
	if rep.MeanFreeze <= 0 || rep.MaxFreeze < rep.MeanFreeze {
		t.Fatalf("freeze accounting broken: %+v", rep)
	}
	// Freeze is a fraction of the full migration, not all of it.
	if rep.MaxFreeze >= rep.Duration {
		t.Fatalf("freeze %v must be below total duration %v", rep.MaxFreeze, rep.Duration)
	}
}

func TestSimulateParallelWave(t *testing.T) {
	topo := topology.NewTestbed()
	// Two disjoint transfers run in one wave concurrently: total duration
	// ≈ the slower one, not the sum.
	moves := []Move{
		{Container: 0, From: 0, To: 1, ImageMB: 1250},
		{Container: 1, From: 2, To: 3, ImageMB: 1250},
	}
	rep, err := Simulate(topo, Schedule(moves), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Waves != 1 {
		t.Fatalf("waves = %d, want 1 (disjoint servers)", rep.Waves)
	}
	if rep.Duration > 13*time.Second {
		t.Fatalf("parallel transfers took %v, want ≈10s", rep.Duration)
	}
}

func TestSimulateDeadLink(t *testing.T) {
	topo := topology.NewTestbed()
	rack := topo.SubtreesAtLevel(topology.LevelRack)[0]
	if err := topo.FailUplinkFraction(rack, 1.0); err != nil {
		t.Fatal(err)
	}
	src := rack.ServerIDs[0]
	moves := []Move{{Container: 0, From: src, To: 15, ImageMB: 10}}
	if _, err := Simulate(topo, Schedule(moves), DefaultOptions()); err == nil {
		t.Fatal("transfer across a dead uplink must error")
	}
}

func TestSimulateTolerateStuckIsolatesFailedTransfers(t *testing.T) {
	// Two moves off server 0 force two waves; the second wave's destination
	// fails before its transfer starts. The tolerant simulation must finish
	// the healthy move and report exactly the stuck one.
	topo := topology.NewTestbed()
	moves := []Move{
		{Container: 0, From: 0, To: 1, ImageMB: 1250},
		{Container: 1, From: 0, To: 2, ImageMB: 500},
	}
	plan := Schedule(moves)
	if len(plan.Waves) != 2 {
		t.Fatalf("waves = %d, want 2 (shared source)", len(plan.Waves))
	}
	if err := topo.FailServer(2); err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.TolerateStuck = true
	rep, err := Simulate(topo, plan, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stuck != 1 || len(rep.StuckMoves) != 1 {
		t.Fatalf("Stuck = %d, StuckMoves = %v, want exactly one", rep.Stuck, rep.StuckMoves)
	}
	if m := plan.Moves[rep.StuckMoves[0]]; m.Container != 1 {
		t.Fatalf("stuck move = %+v, want container 1", m)
	}
	if rep.Duration < 9*time.Second {
		t.Fatalf("healthy move must still complete, duration = %v", rep.Duration)
	}

	// Without tolerance the same plan is a hard error.
	if _, err := Simulate(topo, Schedule(moves), DefaultOptions()); err == nil {
		t.Fatal("stuck transfer must error when not tolerated")
	}
}

func TestReplanDestinationFailureRetargets(t *testing.T) {
	topo := topology.NewTestbed()
	moves := []Move{{Container: 0, From: 0, To: 2, ImageMB: 512}}
	plan := Schedule(moves)
	if err := topo.FailServer(2); err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.TolerateStuck = true
	rep, err := Simulate(topo, plan, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stuck != 1 {
		t.Fatalf("Stuck = %d, want 1", rep.Stuck)
	}
	// The policy re-placed container 0 on surviving server 3.
	replanned, restarts, dropped, err := Replan(topo, plan, rep.StuckMoves, []int{3})
	if err != nil {
		t.Fatal(err)
	}
	if len(restarts) != 0 || len(dropped) != 0 {
		t.Fatalf("restarts = %v, dropped = %v, want a pure retarget", restarts, dropped)
	}
	if len(replanned.Moves) != 1 || replanned.Moves[0].To != 3 || replanned.Moves[0].From != 0 {
		t.Fatalf("replanned = %+v, want 0→3", replanned.Moves)
	}
	// The replanned transfer completes on the surviving topology.
	rep2, err := Simulate(topo, replanned, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rep2.NumMoves != 1 || rep2.Duration <= 0 {
		t.Fatalf("replanned simulation = %+v", rep2)
	}
}

func TestReplanSourceFailureRestartsCold(t *testing.T) {
	// The source dies mid-transfer: the checkpoint image dies with it, so
	// the container restarts at its new server instead of migrating.
	topo := topology.NewTestbed()
	moves := []Move{{Container: 0, From: 2, To: 4, ImageMB: 512}}
	plan := Schedule(moves)
	if err := topo.FailServer(2); err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.TolerateStuck = true
	rep, err := Simulate(topo, plan, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stuck != 1 {
		t.Fatalf("Stuck = %d, want 1", rep.Stuck)
	}
	replanned, restarts, dropped, err := Replan(topo, plan, rep.StuckMoves, []int{4})
	if err != nil {
		t.Fatal(err)
	}
	if len(replanned.Moves) != 0 || len(dropped) != 0 {
		t.Fatalf("moves = %v, dropped = %v, want a restart only", replanned.Moves, dropped)
	}
	if len(restarts) != 1 || restarts[0].Container != 0 || restarts[0].To != 4 {
		t.Fatalf("restarts = %+v, want container 0 restarting at 4", restarts)
	}
}

func TestReplanAccountsEveryStuckMove(t *testing.T) {
	// Mixed outcome: one retarget, one cold restart, one admission drop.
	// Every stuck move must land in exactly one bucket — never vanish.
	topo := topology.NewTestbed()
	moves := []Move{
		{Container: 0, From: 0, To: 2, ImageMB: 512}, // dest fails → retarget
		{Container: 1, From: 3, To: 4, ImageMB: 512}, // source fails → restart
		{Container: 2, From: 1, To: 2, ImageMB: 512}, // dest fails, rejected → drop
	}
	plan := Schedule(moves)
	for _, s := range []int{2, 3} {
		if err := topo.FailServer(s); err != nil {
			t.Fatal(err)
		}
	}
	opts := DefaultOptions()
	opts.TolerateStuck = true
	rep, err := Simulate(topo, plan, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stuck != 3 {
		t.Fatalf("Stuck = %d, want all 3", rep.Stuck)
	}
	newPlace := []int{5, 6, -1}
	replanned, restarts, dropped, err := Replan(topo, plan, rep.StuckMoves, newPlace)
	if err != nil {
		t.Fatal(err)
	}
	accounted := len(replanned.Moves) + len(restarts) + len(dropped)
	if accounted != rep.Stuck {
		t.Fatalf("accounted for %d of %d stuck moves", accounted, rep.Stuck)
	}
	if len(replanned.Moves) != 1 || replanned.Moves[0].Container != 0 || replanned.Moves[0].To != 5 {
		t.Fatalf("replanned = %+v", replanned.Moves)
	}
	if len(restarts) != 1 || restarts[0].Container != 1 {
		t.Fatalf("restarts = %+v", restarts)
	}
	if len(dropped) != 1 || dropped[0] != 2 {
		t.Fatalf("dropped = %v, want explicit rejection of container 2", dropped)
	}
}

func TestReplanRejectsFailedDestination(t *testing.T) {
	topo := topology.NewTestbed()
	plan := Schedule([]Move{{Container: 0, From: 0, To: 2, ImageMB: 512}})
	if err := topo.FailServer(2); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := Replan(topo, plan, []int{0}, []int{2}); err == nil {
		t.Fatal("re-placing onto a failed server must be rejected")
	}
}

func TestPlanAndSimulateEndToEnd(t *testing.T) {
	topo := topology.NewTestbed()
	s := &workload.Spec{}
	for i := 0; i < 8; i++ {
		s.Containers = append(s.Containers, workload.Container{
			ID: i, Demand: resources.New(10, 512, 5),
		})
	}
	oldPlace := []int{0, 0, 1, 1, 2, 2, 3, 3}
	newPlace := []int{0, 4, 1, 5, 2, 6, 3, 7} // four containers move
	rep, err := PlanAndSimulate(topo, s, oldPlace, newPlace, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rep.NumMoves != 4 {
		t.Fatalf("moves = %d, want 4", rep.NumMoves)
	}
	if rep.TotalImageMB != 4*512 {
		t.Fatalf("image total = %v", rep.TotalImageMB)
	}
	if rep.Duration <= 0 {
		t.Fatal("zero duration")
	}
}
