package migrate

import (
	"reflect"
	"testing"
	"time"

	"goldilocks/internal/topology"
)

func retryPolicy(seed uint64, flake float64) RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 4,
		BaseBackoff: 2 * time.Second,
		MaxBackoff:  30 * time.Second,
		FlakeProb:   flake,
		Seed:        seed,
	}
}

// TestRetryZeroValueIsLegacy pins the compatibility contract: the
// zero-value policy produces a report identical to one simulated before
// the retry machinery existed.
func TestRetryZeroValueIsLegacy(t *testing.T) {
	topo := topology.NewTestbed()
	moves := []Move{
		{Container: 0, From: 0, To: 1, ImageMB: 1250},
		{Container: 1, From: 2, To: 3, ImageMB: 625},
	}
	base, err := Simulate(topo, Schedule(moves), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Retry = RetryPolicy{} // zero value
	withPolicy, err := Simulate(topology.NewTestbed(), Schedule(moves), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, withPolicy) {
		t.Fatalf("zero-value policy changed the report:\n got %+v\nwant %+v", withPolicy, base)
	}
	if base.Retries != 0 || base.Exhausted != 0 {
		t.Fatalf("retry axes nonzero without a policy: %+v", base)
	}
}

// TestRetryDeterministic pins that the same seed replays the same
// attempt outcomes and the same backoff delays, and that a different
// seed (eventually) draws a different ladder.
func TestRetryDeterministic(t *testing.T) {
	p := retryPolicy(42, 0.5)
	s1, f1, ok1 := p.planAttempts(7)
	s2, f2, ok2 := p.planAttempts(7)
	if s1 != s2 || f1 != f2 || ok1 != ok2 {
		t.Fatalf("same policy, same container, different ladder: (%v,%d,%v) vs (%v,%d,%v)",
			s1, f1, ok1, s2, f2, ok2)
	}
	differs := false
	for c := 0; c < 64 && !differs; c++ {
		a, fa, oka := retryPolicy(1, 0.5).planAttempts(c)
		b, fb, okb := retryPolicy(2, 0.5).planAttempts(c)
		if a != b || fa != fb || oka != okb {
			differs = true
		}
	}
	if !differs {
		t.Fatal("seed never influences the retry ladder")
	}
}

// TestRetryBackoffGrowsAndCaps checks the exponential-with-jitter shape:
// each retry's delay is within [0.5, 1)× of min(base·2^(k−1), cap).
func TestRetryBackoffGrowsAndCaps(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 8, BaseBackoff: time.Second, MaxBackoff: 5 * time.Second, FlakeProb: 1, Seed: 9}
	for attempt := 1; attempt <= 7; attempt++ {
		d := p.backoff(3, attempt)
		want := time.Second << (attempt - 1)
		if want > p.MaxBackoff {
			want = p.MaxBackoff
		}
		if d < want/2 || d >= want {
			t.Fatalf("attempt %d backoff %v outside [%v, %v)", attempt, d, want/2, want)
		}
	}
}

// TestRetryDelaysInjection verifies failed attempts push the transfer's
// network injection (and thus the wave end) out by the backoff sum.
func TestRetryDelaysInjection(t *testing.T) {
	moves := []Move{{Container: 0, From: 0, To: 1, ImageMB: 1250}}
	// Find a seed whose first attempt fails and second succeeds.
	var p RetryPolicy
	found := false
	for seed := uint64(0); seed < 512 && !found; seed++ {
		p = retryPolicy(seed, 0.5)
		if _, failed, ok := p.planAttempts(0); ok && failed >= 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("no seed with a fail-then-succeed ladder in 512 tries")
	}
	opts := DefaultOptions()
	opts.Retry = p
	rep, err := Simulate(topology.NewTestbed(), Schedule(moves), opts)
	if err != nil {
		t.Fatal(err)
	}
	base, err := Simulate(topology.NewTestbed(), Schedule(moves), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Retries < 1 {
		t.Fatalf("retries = %d, want ≥ 1", rep.Retries)
	}
	// The backoff is at least half the base (jitter floor), so the wave
	// must end measurably later than the retry-free run.
	if rep.Duration < base.Duration+p.BaseBackoff/2 {
		t.Fatalf("duration %v not delayed past %v by backoff", rep.Duration, base.Duration)
	}
}

// TestRetryExhaustionSurfaces is the silent-loss regression: a wave whose
// every transfer exhausts its attempts must report each move in
// ExhaustedMoves — not vanish from the accounting.
func TestRetryExhaustionSurfaces(t *testing.T) {
	moves := []Move{
		{Container: 0, From: 0, To: 1, ImageMB: 1250},
		{Container: 1, From: 2, To: 3, ImageMB: 625},
	}
	opts := DefaultOptions()
	opts.Retry = RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Second, FlakeProb: 1, Seed: 5}
	rep, err := Simulate(topology.NewTestbed(), Schedule(moves), opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Exhausted != 2 || !reflect.DeepEqual(rep.ExhaustedMoves, []int{0, 1}) {
		t.Fatalf("exhaustion not surfaced: %+v", rep)
	}
	if rep.Retries != 6 {
		t.Fatalf("retries = %d, want 6 (3 failed attempts × 2 transfers)", rep.Retries)
	}
	if rep.TotalImageMB != 0 {
		t.Fatalf("exhausted transfers counted %v MB of traffic", rep.TotalImageMB)
	}
	if rep.Duration != 0 {
		t.Fatalf("no transfer ran, yet duration = %v", rep.Duration)
	}
}
