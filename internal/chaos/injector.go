package chaos

import (
	"fmt"
	"time"

	"goldilocks/internal/sim"
	"goldilocks/internal/telemetry"
	"goldilocks/internal/topology"
)

// Record is one applied or reverted fault, in the order the engine fired
// it. The log is the injector's deterministic audit trail: experiments
// report it, and the determinism regression diffs it across runs.
type Record struct {
	At        time.Duration
	Fault     Fault
	Recovered bool // false = fault applied, true = fault reverted
}

// String renders the record for logs.
func (r Record) String() string {
	verb := "fail"
	if r.Recovered {
		verb = "recover"
	}
	target := ""
	switch {
	case r.Fault.Server >= 0:
		target = fmt.Sprintf("server %d", r.Fault.Server)
	case r.Fault.Node >= 0:
		target = fmt.Sprintf("node %d", r.Fault.Node)
	}
	return fmt.Sprintf("%v %s %s %s", r.At, verb, r.Fault.Kind, target)
}

// serverState tracks overlapping server-scoped faults so recovery of one
// fault never prematurely undoes another: a server inside a failed rack
// that also crashed independently stays down until *both* outages end, and
// a straggler throttle re-asserts itself when a concurrent crash recovers.
type serverState struct {
	crashes   int       // active crash-scoped faults (crash or rack)
	throttles []float64 // active straggler retain-fractions
}

// linkState does the same for uplinks: cuts and degradations stack, and
// reverting one re-derives the capacity from nominal plus the survivors.
type linkState struct {
	cuts     int
	degrades []float64 // active lost-fractions, application order
}

// Injector replays a Schedule against a topology on a sim.Engine. It is
// single-threaded like the engine; the cluster loop calls AdvanceTo at
// each epoch boundary and then reads the topology's failure state.
type Injector struct {
	eng  *sim.Engine
	topo *topology.Topology

	servers map[int]*serverState // keyed by server id; never iterated
	links   map[int]*linkState   // keyed by node ID; never iterated

	// Control-plane fault state. These do not mutate the topology — the
	// cluster loop polls the accessors at each epoch boundary and feeds
	// them into the epoch input (solve-cost factor, flake probability).
	solveInflations []float64 // active solve-cost multipliers
	flakeProbs      []float64 // active per-attempt transfer failure probs

	log  []Record
	sess *telemetry.Session
}

// AttachTelemetry mirrors every subsequent log record into the session as
// span events and fault counters. Events fire in engine order — the same
// order the deterministic log records — so the telemetry output stays a
// pure function of the schedule.
func (inj *Injector) AttachTelemetry(sess *telemetry.Session) { inj.sess = sess }

// record appends to the log and mirrors the record into telemetry.
func (inj *Injector) record(rec Record) {
	inj.log = append(inj.log, rec)
	if inj.sess == nil {
		return
	}
	verb := "fault-applied"
	if rec.Recovered {
		verb = "fault-reverted"
		inj.sess.Counter("chaos_faults_reverted_total").Inc()
	} else {
		inj.sess.Counter("chaos_faults_applied_total").Inc()
	}
	if tr := inj.sess.Tracer; tr != nil {
		sp := tr.Root(verb, rec.At)
		sp.SetStr("fault", rec.Fault.Kind.String())
		if rec.Fault.Server >= 0 {
			sp.SetInt("server", rec.Fault.Server)
		}
		if rec.Fault.Node >= 0 {
			sp.SetInt("node", rec.Fault.Node)
		}
		sp.End()
	}
}

// NewInjector validates the schedule and arms every fault (and its
// recovery, for non-permanent faults) on the engine. Faults earlier than
// the engine's current time are rejected — the engine cannot rewind.
func NewInjector(eng *sim.Engine, tp *topology.Topology, s Schedule) (*Injector, error) {
	if err := s.Validate(tp); err != nil {
		return nil, err
	}
	for _, f := range s.Faults {
		if f.At < eng.Now() {
			return nil, fmt.Errorf("chaos: fault at %v precedes engine time %v", f.At, eng.Now())
		}
	}
	inj := &Injector{
		eng:     eng,
		topo:    tp,
		servers: make(map[int]*serverState),
		links:   make(map[int]*linkState),
	}
	for _, f := range s.Faults {
		f := f
		eng.At(f.At, func() { inj.apply(f) })
		if end, ok := f.end(); ok {
			eng.At(end, func() { inj.revert(f) })
		}
	}
	return inj, nil
}

// AdvanceTo runs the engine (and thus the fault schedule) up to absolute
// simulated time t.
func (inj *Injector) AdvanceTo(t time.Duration) {
	inj.eng.RunUntil(t)
}

// Log returns the applied/reverted records so far, in firing order. The
// slice is owned by the injector.
func (inj *Injector) Log() []Record { return inj.log }

// Pending reports how many schedule events have not fired yet.
func (inj *Injector) Pending() int { return inj.eng.Pending() }

// SolveInflation returns the current modeled-solve-cost multiplier: the
// product of all active solve-straggler faults, 1 when none are live.
// Overlapping stragglers compound — two 2× pauses cost 4×.
func (inj *Injector) SolveInflation() float64 {
	m := 1.0
	for _, f := range inj.solveInflations {
		m *= f
	}
	return m
}

// MigrationFlakeProb returns the current per-attempt transfer failure
// probability: the worst (highest) active migration-flake fault, 0 when
// none are live.
func (inj *Injector) MigrationFlakeProb() float64 {
	p := 0.0
	for _, f := range inj.flakeProbs {
		if f > p {
			p = f
		}
	}
	return p
}

func (inj *Injector) server(id int) *serverState {
	st := inj.servers[id]
	if st == nil {
		st = &serverState{}
		inj.servers[id] = st
	}
	return st
}

func (inj *Injector) link(nodeID int) *linkState {
	st := inj.links[nodeID]
	if st == nil {
		st = &linkState{}
		inj.links[nodeID] = st
	}
	return st
}

func (inj *Injector) apply(f Fault) {
	switch f.Kind {
	case KindServerCrash:
		inj.crashServer(f.Server)
	case KindStraggler:
		st := inj.server(f.Server)
		st.throttles = append(st.throttles, f.Fraction)
		inj.reapplyServer(f.Server)
	case KindLinkCut, KindSwitchFail:
		st := inj.link(f.Node)
		st.cuts++
		inj.reapplyLink(f.Node)
	case KindLinkDegrade:
		st := inj.link(f.Node)
		st.degrades = append(st.degrades, f.Fraction)
		inj.reapplyLink(f.Node)
	case KindRackFault:
		// One fault domain: the ToR uplink and every server go together.
		st := inj.link(f.Node)
		st.cuts++
		inj.reapplyLink(f.Node)
		for _, id := range inj.topo.NodeByID(f.Node).ServerIDs {
			inj.crashServer(id)
		}
	case KindSolveStraggler:
		inj.solveInflations = append(inj.solveInflations, f.Fraction)
	case KindMigrationFlake:
		inj.flakeProbs = append(inj.flakeProbs, f.Fraction)
	case KindSchedulerCrash:
		// Audit-trail only: the crash/resume harness interprets it.
	}
	inj.record(Record{At: inj.eng.Now(), Fault: f})
}

func (inj *Injector) revert(f Fault) {
	switch f.Kind {
	case KindServerCrash:
		inj.uncrashServer(f.Server)
	case KindStraggler:
		removeFirst(&inj.server(f.Server).throttles, f.Fraction)
		inj.reapplyServer(f.Server)
	case KindLinkCut, KindSwitchFail:
		st := inj.link(f.Node)
		if st.cuts > 0 {
			st.cuts--
		}
		inj.reapplyLink(f.Node)
	case KindLinkDegrade:
		removeFirst(&inj.link(f.Node).degrades, f.Fraction)
		inj.reapplyLink(f.Node)
	case KindRackFault:
		st := inj.link(f.Node)
		if st.cuts > 0 {
			st.cuts--
		}
		inj.reapplyLink(f.Node)
		for _, id := range inj.topo.NodeByID(f.Node).ServerIDs {
			inj.uncrashServer(id)
		}
	case KindSolveStraggler:
		removeFirst(&inj.solveInflations, f.Fraction)
	case KindMigrationFlake:
		removeFirst(&inj.flakeProbs, f.Fraction)
	case KindSchedulerCrash:
		// Nothing to undo.
	}
	inj.record(Record{At: inj.eng.Now(), Fault: f, Recovered: true})
}

func (inj *Injector) crashServer(id int) {
	st := inj.server(id)
	st.crashes++
	if st.crashes == 1 {
		// Ignore the error: ids were validated against this topology.
		_ = inj.topo.FailServer(id)
	}
}

func (inj *Injector) uncrashServer(id int) {
	st := inj.server(id)
	if st.crashes > 0 {
		st.crashes--
	}
	inj.reapplyServer(id)
}

// reapplyServer re-derives a server's state from its active fault set:
// crashed if any crash-scoped fault is live, else throttled to the
// tightest active straggler, else fully recovered. Server NIC link faults
// (if any were scheduled against the leaf node) are re-asserted afterward,
// since RecoverServer also restores the NIC.
func (inj *Injector) reapplyServer(id int) {
	st := inj.server(id)
	if st.crashes > 0 {
		_ = inj.topo.FailServer(id)
		return
	}
	_ = inj.topo.RecoverServer(id)
	if f := minFraction(st.throttles); f < 1 {
		_ = inj.topo.ThrottleServer(id, f)
	}
	nodeID := inj.topo.ServerNode[id].ID
	if _, ok := inj.links[nodeID]; ok {
		inj.reapplyLink(nodeID)
	}
}

// reapplyLink re-derives an uplink's capacity from nominal and the active
// cut/degrade set. A crashed server's NIC stays cut regardless of link
// faults: the server outage owns it.
func (inj *Injector) reapplyLink(nodeID int) {
	n := inj.topo.NodeByID(nodeID)
	if n.IsServer() {
		if st := inj.servers[n.ServerID]; st != nil && st.crashes > 0 {
			return
		}
	}
	_ = inj.topo.RecoverUplink(n)
	st := inj.link(nodeID)
	if st.cuts > 0 {
		_ = inj.topo.FailUplink(n)
		return
	}
	for _, f := range st.degrades {
		_ = inj.topo.FailUplinkFraction(n, f)
	}
}

// removeFirst deletes the first element equal to v, preserving order.
func removeFirst(s *[]float64, v float64) {
	for i, x := range *s {
		if x == v {
			*s = append((*s)[:i], (*s)[i+1:]...)
			return
		}
	}
}

// minFraction returns the smallest retained fraction, or 1 if none active.
func minFraction(s []float64) float64 {
	m := 1.0
	for _, x := range s {
		if x < m {
			m = x
		}
	}
	return m
}
