package chaos

import (
	"reflect"
	"testing"
	"time"

	"goldilocks/internal/sim"
	"goldilocks/internal/topology"
)

func testTopology(t *testing.T) *topology.Topology {
	t.Helper()
	return topology.NewTestbed()
}

func genConfig(seed int64) GenConfig {
	return GenConfig{
		Seed:              seed,
		Horizon:           24 * time.Hour,
		MTTF:              8 * time.Hour,
		MTTR:              30 * time.Minute,
		BurstSize:         2,
		RackFaultFraction: 0.15,
		StragglerFraction: 0.15,
		LinkFaultFraction: 0.15,
	}
}

func TestGenerateDeterministic(t *testing.T) {
	tp := testTopology(t)
	a, err := Generate(tp, genConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(tp, genConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed must generate identical schedules")
	}
	c, err := Generate(tp, genConfig(43))
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds should generate different schedules")
	}
	if len(a.Faults) == 0 {
		t.Fatal("24h at MTTF 8h over 16 servers must produce faults")
	}
	if err := a.Validate(tp); err != nil {
		t.Fatalf("generated schedule fails validation: %v", err)
	}
	for i := 1; i < len(a.Faults); i++ {
		if a.Faults[i].At < a.Faults[i-1].At {
			t.Fatal("schedule not sorted by start time")
		}
	}
}

func TestGenerateCoversAllKinds(t *testing.T) {
	tp := testTopology(t)
	cfg := genConfig(7)
	cfg.Horizon = 30 * 24 * time.Hour
	s, err := Generate(tp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[Kind]bool)
	for _, f := range s.Faults {
		seen[f.Kind] = true
	}
	for _, k := range []Kind{KindServerCrash, KindStraggler, KindRackFault} {
		if !seen[k] {
			t.Errorf("30-day schedule never generated %v", k)
		}
	}
	if !seen[KindSwitchFail] && !seen[KindLinkDegrade] {
		t.Error("30-day schedule never generated a fabric fault")
	}
}

func TestGenConfigValidate(t *testing.T) {
	tp := testTopology(t)
	bad := []func(*GenConfig){
		func(c *GenConfig) { c.Horizon = 0 },
		func(c *GenConfig) { c.MTTF = 0 },
		func(c *GenConfig) { c.MTTR = -time.Second },
		func(c *GenConfig) { c.BurstSize = 0 },
		func(c *GenConfig) { c.RackFaultFraction = -0.1 },
		func(c *GenConfig) { c.RackFaultFraction, c.StragglerFraction = 0.7, 0.7 },
	}
	for i, mutate := range bad {
		cfg := genConfig(1)
		mutate(&cfg)
		if _, err := Generate(tp, cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestScheduleValidate(t *testing.T) {
	tp := testTopology(t)
	rack := tp.SubtreesAtLevel(topology.LevelRack)[0]
	bad := []Fault{
		{Kind: KindServerCrash, At: -time.Second, Server: 0, Node: -1},
		{Kind: KindServerCrash, At: 0, Duration: -time.Second, Server: 0, Node: -1},
		{Kind: KindServerCrash, At: 0, Server: 99, Node: -1},
		{Kind: KindStraggler, At: 0, Server: 0, Node: -1, Fraction: 0},
		{Kind: KindStraggler, At: 0, Server: 0, Node: -1, Fraction: 1},
		{Kind: KindLinkCut, At: 0, Server: -1, Node: -99},
		{Kind: KindLinkCut, At: 0, Server: -1, Node: tp.Root.ID},
		{Kind: KindLinkDegrade, At: 0, Server: -1, Node: rack.ID, Fraction: 1.5},
		{Kind: KindRackFault, At: 0, Server: -1, Node: tp.ServerNode[0].ID},
		{Kind: Kind(99), At: 0, Server: -1, Node: -1},
	}
	for i, f := range bad {
		s := Schedule{Faults: []Fault{f}}
		if err := s.Validate(tp); err == nil {
			t.Errorf("bad fault %d accepted: %+v", i, f)
		}
	}
}

// driveTo builds an engine+injector for the schedule and returns both.
func driveTo(t *testing.T, tp *topology.Topology, s Schedule) *Injector {
	t.Helper()
	eng := &sim.Engine{}
	inj, err := NewInjector(eng, tp, s)
	if err != nil {
		t.Fatal(err)
	}
	return inj
}

func sameCapacities(t *testing.T, got, want *topology.Topology) {
	t.Helper()
	for id := range got.Capacity {
		if got.Capacity[id] != want.Capacity[id] {
			t.Fatalf("server %d capacity = %v, want %v", id, got.Capacity[id], want.Capacity[id])
		}
	}
	wantNodes := want.Nodes()
	for i, n := range got.Nodes() {
		w := wantNodes[i]
		if (n.Uplink == nil) != (w.Uplink == nil) {
			t.Fatalf("node %d uplink presence differs", n.ID)
		}
		if n.Uplink != nil && n.Uplink.CapacityMbps != w.Uplink.CapacityMbps {
			t.Fatalf("node %d uplink = %v, want %v", n.ID, n.Uplink.CapacityMbps, w.Uplink.CapacityMbps)
		}
	}
}

func TestInjectorCrashAndRecover(t *testing.T) {
	tp := testTopology(t)
	pristine := tp.Clone()
	s := Schedule{Faults: []Fault{
		{Kind: KindServerCrash, At: 10 * time.Minute, Duration: 20 * time.Minute, Server: 3, Node: -1},
	}}
	inj := driveTo(t, tp, s)

	inj.AdvanceTo(5 * time.Minute)
	if tp.ServerFailed(3) {
		t.Fatal("fault fired early")
	}
	inj.AdvanceTo(15 * time.Minute)
	if !tp.ServerFailed(3) {
		t.Fatal("fault did not fire")
	}
	inj.AdvanceTo(time.Hour)
	if tp.ServerFailed(3) {
		t.Fatal("fault did not recover")
	}
	sameCapacities(t, tp, pristine)
	if got := len(inj.Log()); got != 2 {
		t.Fatalf("log records = %d, want 2", got)
	}
	if inj.Log()[0].Recovered || !inj.Log()[1].Recovered {
		t.Fatal("log order wrong")
	}
}

func TestInjectorPermanentFault(t *testing.T) {
	tp := testTopology(t)
	s := Schedule{Faults: []Fault{
		{Kind: KindServerCrash, At: time.Minute, Duration: 0, Server: 0, Node: -1},
	}}
	inj := driveTo(t, tp, s)
	inj.AdvanceTo(100 * time.Hour)
	if !tp.ServerFailed(0) {
		t.Fatal("permanent fault must never recover")
	}
	if inj.Pending() != 0 {
		t.Fatal("no recovery event should be queued")
	}
}

func TestInjectorRackFaultIsOneDomain(t *testing.T) {
	tp := testTopology(t)
	pristine := tp.Clone()
	rack := tp.SubtreesAtLevel(topology.LevelRack)[1]
	s := Schedule{Faults: []Fault{
		{Kind: KindRackFault, At: time.Minute, Duration: 10 * time.Minute, Server: -1, Node: rack.ID},
	}}
	inj := driveTo(t, tp, s)
	inj.AdvanceTo(2 * time.Minute)
	for _, id := range rack.ServerIDs {
		if !tp.ServerFailed(id) {
			t.Fatalf("rack fault missed server %d", id)
		}
	}
	if rack.Uplink.CapacityMbps != 0 {
		t.Fatal("rack fault must cut the ToR uplink")
	}
	if tp.NumFailedServers() != len(rack.ServerIDs) {
		t.Fatal("rack fault leaked outside the domain")
	}
	inj.AdvanceTo(time.Hour)
	sameCapacities(t, tp, pristine)
}

func TestInjectorOverlappingRackAndServerFault(t *testing.T) {
	tp := testTopology(t)
	rack := tp.SubtreesAtLevel(topology.LevelRack)[0]
	victim := rack.ServerIDs[0]
	// The server's own outage outlives the rack outage: rack recovery must
	// not resurrect it early.
	s := Schedule{Faults: []Fault{
		{Kind: KindServerCrash, At: time.Minute, Duration: 30 * time.Minute, Server: victim, Node: -1},
		{Kind: KindRackFault, At: 2 * time.Minute, Duration: 5 * time.Minute, Server: -1, Node: rack.ID},
	}}
	inj := driveTo(t, tp, s)
	inj.AdvanceTo(10 * time.Minute) // rack recovered, server outage live
	for _, id := range rack.ServerIDs[1:] {
		if tp.ServerFailed(id) {
			t.Fatalf("server %d should have recovered with the rack", id)
		}
	}
	if !tp.ServerFailed(victim) {
		t.Fatal("rack recovery resurrected the independently crashed server")
	}
	inj.AdvanceTo(time.Hour)
	if tp.ServerFailed(victim) {
		t.Fatal("server outage never ended")
	}
}

func TestInjectorStragglerUnderCrash(t *testing.T) {
	tp := testTopology(t)
	pristine := tp.Clone()
	s := Schedule{Faults: []Fault{
		{Kind: KindStraggler, At: time.Minute, Duration: time.Hour, Server: 2, Node: -1, Fraction: 0.5},
		{Kind: KindServerCrash, At: 2 * time.Minute, Duration: 5 * time.Minute, Server: 2, Node: -1},
	}}
	inj := driveTo(t, tp, s)
	inj.AdvanceTo(90 * time.Second)
	if want := pristine.Capacity[2].Scale(0.5); tp.Capacity[2] != want {
		t.Fatalf("throttled capacity = %v, want %v", tp.Capacity[2], want)
	}
	inj.AdvanceTo(3 * time.Minute) // crash overrides throttle
	if !tp.ServerFailed(2) {
		t.Fatal("crash must override throttle")
	}
	inj.AdvanceTo(10 * time.Minute) // crash over, throttle still active
	if tp.ServerFailed(2) {
		t.Fatal("crash did not recover")
	}
	if want := pristine.Capacity[2].Scale(0.5); tp.Capacity[2] != want {
		t.Fatalf("throttle must re-assert after crash recovery: %v, want %v", tp.Capacity[2], want)
	}
	inj.AdvanceTo(2 * time.Hour)
	sameCapacities(t, tp, pristine)
}

func TestInjectorOverlappingLinkDegrades(t *testing.T) {
	tp := testTopology(t)
	rack := tp.SubtreesAtLevel(topology.LevelRack)[0]
	nominal := rack.Uplink.CapacityMbps
	s := Schedule{Faults: []Fault{
		{Kind: KindLinkDegrade, At: time.Minute, Duration: time.Hour, Server: -1, Node: rack.ID, Fraction: 0.5},
		{Kind: KindLinkDegrade, At: 2 * time.Minute, Duration: 10 * time.Minute, Server: -1, Node: rack.ID, Fraction: 0.4},
		{Kind: KindSwitchFail, At: 3 * time.Minute, Duration: 2 * time.Minute, Server: -1, Node: rack.ID},
	}}
	inj := driveTo(t, tp, s)
	inj.AdvanceTo(150 * time.Second)
	if want := nominal * 0.5 * 0.6; tp.SubtreesAtLevel(topology.LevelRack)[0].Uplink.CapacityMbps != want {
		t.Fatalf("stacked degrade = %v, want %v", rack.Uplink.CapacityMbps, want)
	}
	inj.AdvanceTo(4 * time.Minute) // cut dominates
	if rack.Uplink.CapacityMbps != 0 {
		t.Fatal("switch failure must cut the link")
	}
	inj.AdvanceTo(6 * time.Minute) // cut recovered, both degrades live
	if want := nominal * 0.5 * 0.6; rack.Uplink.CapacityMbps != want {
		t.Fatalf("after cut recovery = %v, want %v", rack.Uplink.CapacityMbps, want)
	}
	inj.AdvanceTo(20 * time.Minute) // second degrade gone, first remains
	if want := nominal * 0.5; rack.Uplink.CapacityMbps != want {
		t.Fatalf("after partial recovery = %v, want %v", rack.Uplink.CapacityMbps, want)
	}
	inj.AdvanceTo(2 * time.Hour)
	if rack.Uplink.CapacityMbps != nominal {
		t.Fatalf("final capacity = %v, want %v", rack.Uplink.CapacityMbps, nominal)
	}
}

func TestInjectorReplayDeterministic(t *testing.T) {
	run := func() []Record {
		tp := topology.NewTestbed()
		s, err := Generate(tp, genConfig(99))
		if err != nil {
			t.Fatal(err)
		}
		eng := &sim.Engine{}
		inj, err := NewInjector(eng, tp, s)
		if err != nil {
			t.Fatal(err)
		}
		inj.AdvanceTo(48 * time.Hour)
		return inj.Log()
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("replaying the same schedule must produce an identical log")
	}
	if len(a) == 0 {
		t.Fatal("expected a non-empty fault log")
	}
}

func TestInjectorRejectsPastFaults(t *testing.T) {
	tp := testTopology(t)
	eng := &sim.Engine{}
	eng.RunUntil(time.Hour)
	s := Schedule{Faults: []Fault{{Kind: KindServerCrash, At: time.Minute, Server: 0, Node: -1}}}
	if _, err := NewInjector(eng, tp, s); err == nil {
		t.Fatal("fault before engine time must be rejected")
	}
}

func TestKindString(t *testing.T) {
	kinds := []Kind{KindServerCrash, KindLinkCut, KindLinkDegrade, KindSwitchFail, KindStraggler, KindRackFault}
	seen := make(map[string]bool)
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Fatalf("kind %d has empty or duplicate name %q", int(k), s)
		}
		seen[s] = true
	}
	if Kind(99).String() == "" {
		t.Fatal("unknown kind must still render")
	}
}

func TestValidateControlPlaneFaults(t *testing.T) {
	tp := testTopology(t)
	bad := []Fault{
		{Kind: KindSolveStraggler, At: 0, Server: -1, Node: -1, Fraction: 1},
		{Kind: KindSolveStraggler, At: 0, Server: -1, Node: -1, Fraction: 0.5},
		{Kind: KindMigrationFlake, At: 0, Server: -1, Node: -1, Fraction: 0},
		{Kind: KindMigrationFlake, At: 0, Server: -1, Node: -1, Fraction: 1.2},
		{Kind: KindSchedulerCrash, At: 0, Server: -1, Node: -1, Record: -2},
	}
	for i, f := range bad {
		s := Schedule{Faults: []Fault{f}}
		if err := s.Validate(tp); err == nil {
			t.Errorf("bad control-plane fault %d accepted: %+v", i, f)
		}
	}
	good := Schedule{Faults: []Fault{
		{Kind: KindSolveStraggler, At: 0, Duration: time.Hour, Server: -1, Node: -1, Fraction: 3},
		{Kind: KindMigrationFlake, At: 0, Duration: time.Hour, Server: -1, Node: -1, Fraction: 0.25},
		{Kind: KindSchedulerCrash, At: time.Hour, Server: -1, Node: -1, Record: 2},
		{Kind: KindSchedulerCrash, At: 2 * time.Hour, Server: -1, Node: -1, Record: -1},
	}}
	if err := good.Validate(tp); err != nil {
		t.Fatalf("valid control-plane schedule rejected: %v", err)
	}
}

func TestInjectorControlPlaneWindows(t *testing.T) {
	tp := testTopology(t)
	pristine := tp.Clone()
	s := Schedule{Faults: []Fault{
		{Kind: KindSolveStraggler, At: time.Hour, Duration: 2 * time.Hour, Server: -1, Node: -1, Fraction: 2},
		{Kind: KindSolveStraggler, At: 2 * time.Hour, Duration: 2 * time.Hour, Server: -1, Node: -1, Fraction: 3},
		{Kind: KindMigrationFlake, At: time.Hour, Duration: time.Hour, Server: -1, Node: -1, Fraction: 0.2},
		{Kind: KindMigrationFlake, At: 90 * time.Minute, Duration: time.Hour, Server: -1, Node: -1, Fraction: 0.5},
		{Kind: KindSchedulerCrash, At: 3 * time.Hour, Server: -1, Node: -1, Record: 1},
	}}
	inj := driveTo(t, tp, s)

	if got := inj.SolveInflation(); got != 1 {
		t.Fatalf("idle SolveInflation = %v, want 1", got)
	}
	if got := inj.MigrationFlakeProb(); got != 0 {
		t.Fatalf("idle MigrationFlakeProb = %v, want 0", got)
	}

	inj.AdvanceTo(time.Hour + time.Minute)
	if got := inj.SolveInflation(); got != 2 {
		t.Fatalf("t=1h SolveInflation = %v, want 2", got)
	}
	if got := inj.MigrationFlakeProb(); got != 0.2 {
		t.Fatalf("t=1h MigrationFlakeProb = %v, want 0.2", got)
	}

	// Overlap: stragglers compound, flakes take the worst.
	inj.AdvanceTo(2*time.Hour + time.Minute)
	if got := inj.SolveInflation(); got != 6 {
		t.Fatalf("overlap SolveInflation = %v, want 6", got)
	}
	if got := inj.MigrationFlakeProb(); got != 0.5 {
		t.Fatalf("overlap MigrationFlakeProb = %v, want 0.5", got)
	}

	// All windows closed; scheduler-crash fired and was logged only.
	inj.AdvanceTo(5 * time.Hour)
	if got := inj.SolveInflation(); got != 1 {
		t.Fatalf("recovered SolveInflation = %v, want 1", got)
	}
	if got := inj.MigrationFlakeProb(); got != 0 {
		t.Fatalf("recovered MigrationFlakeProb = %v, want 0", got)
	}
	sameCapacities(t, tp, pristine)
	var sawCrash bool
	for _, rec := range inj.Log() {
		if rec.Fault.Kind == KindSchedulerCrash && !rec.Recovered {
			sawCrash = true
			if rec.Fault.Record != 1 {
				t.Fatalf("crash record index = %d, want 1", rec.Fault.Record)
			}
		}
	}
	if !sawCrash {
		t.Fatal("scheduler-crash never reached the audit log")
	}
}

func TestGenerateControlPlaneKinds(t *testing.T) {
	tp := testTopology(t)
	cfg := genConfig(11)
	cfg.Horizon = 30 * 24 * time.Hour
	cfg.SolveStragglerFraction = 0.15
	cfg.MigrationFlakeFraction = 0.15
	s, err := Generate(tp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(tp); err != nil {
		t.Fatalf("generated schedule fails validation: %v", err)
	}
	seen := make(map[Kind]bool)
	for _, f := range s.Faults {
		seen[f.Kind] = true
	}
	if !seen[KindSolveStraggler] || !seen[KindMigrationFlake] {
		t.Fatalf("30-day schedule missing control-plane kinds: %v", seen)
	}
}

// TestGenerateLegacyPrefixStable pins that turning the new control-plane
// fractions on only *adds* kinds — a schedule generated with them at zero
// draws the same legacy fault sequence as before they existed.
func TestGenerateLegacyPrefixStable(t *testing.T) {
	tp := testTopology(t)
	a, err := Generate(tp, genConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range a.Faults {
		switch f.Kind {
		case KindSolveStraggler, KindMigrationFlake, KindSchedulerCrash:
			t.Fatalf("zero-fraction config generated control-plane fault %v", f.Kind)
		}
	}
}
