// Package chaos is the deterministic fault-injection subsystem: it turns a
// seed and a handful of reliability parameters (MTTF, MTTR, burst size,
// fault-domain mix) into a reproducible Schedule of faults — server
// crashes, link cuts and degradations, switch failures, stragglers, and
// correlated rack-wide outages — and replays that schedule against a live
// topology through the internal/sim event engine.
//
// The package exists because the paper's asymmetric-topology extension
// (§IV) and replica anti-affinity only earn their keep under *dynamic*
// failure: servers must die mid-run, displaced containers must be
// re-placed on the surviving fabric, and replicated services must ride out
// a rack loss on their remaining members. Everything here is
// deterministic by construction — same seed, same topology shape, same
// config ⇒ bit-identical schedule and bit-identical topology mutations —
// so the cluster simulator's EpochReport stream stays reproducible across
// parallelism levels (see DESIGN.md §5.1.2 for the contract this package
// is held to by goldilocks-lint).
package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"goldilocks/internal/topology"
)

// Kind enumerates the fault classes the injector can apply.
type Kind int

// Fault kinds. Each maps onto one or more topology mutations; Recover
// events invert them exactly (satellite: RecoverUplink/RecoverServer are
// true inverses of the failure setters).
const (
	// KindServerCrash takes one server down: zero capacity, NIC cut.
	KindServerCrash Kind = iota
	// KindLinkCut severs a subtree uplink entirely (cable pull, optics
	// death). Target is a node ID.
	KindLinkCut
	// KindLinkDegrade removes Fraction of a subtree uplink's capacity
	// (flapping optics, partial LAG failure). Target is a node ID.
	KindLinkDegrade
	// KindSwitchFail models losing the switching layer at a node: the
	// subtree keeps its servers but loses its uplink, isolating it from
	// the rest of the fabric. Operationally identical to a cut of the
	// aggregate link, but generated against rack/pod nodes specifically.
	KindSwitchFail
	// KindStraggler throttles a server to Fraction of its healthy
	// capacity without killing it — the gray-failure case that pure
	// up/down models miss.
	KindStraggler
	// KindRackFault is the correlated fault domain: every server in the
	// rack crashes and the ToR uplink is cut, all as one event. This is
	// the failure anti-affinity (§ failure resilience) defends against.
	KindRackFault
	// KindSolveStraggler is a control-plane gray failure: the scheduler
	// itself runs slow (GC pause, noisy co-tenant on the control node) and
	// the epoch's modeled solve cost is multiplied by Fraction (> 1). The
	// deadline-budgeted degradation ladder is what defends against it.
	KindSolveStraggler
	// KindMigrationFlake makes migration transfers flaky for the outage
	// window: each transfer attempt fails independently with probability
	// Fraction. The seeded retry/backoff policy is what rides it out.
	KindMigrationFlake
	// KindSchedulerCrash kills the control plane at a point in the epoch
	// loop: the harness stops after the epoch At falls in, mid-commit
	// after journal record Record (-1 = at the epoch boundary). The
	// injector only logs it — the crash/resume harness interprets it.
	KindSchedulerCrash
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindServerCrash:
		return "server-crash"
	case KindLinkCut:
		return "link-cut"
	case KindLinkDegrade:
		return "link-degrade"
	case KindSwitchFail:
		return "switch-fail"
	case KindStraggler:
		return "straggler"
	case KindRackFault:
		return "rack-fault"
	case KindSolveStraggler:
		return "solve-straggler"
	case KindMigrationFlake:
		return "migration-flake"
	case KindSchedulerCrash:
		return "scheduler-crash"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Fault is one scheduled failure. At is absolute simulated time; Duration
// is the outage length (0 means permanent — the fault never recovers).
type Fault struct {
	Kind     Kind
	At       time.Duration
	Duration time.Duration
	// Server is the target server id for server-scoped kinds
	// (KindServerCrash, KindStraggler); -1 otherwise.
	Server int
	// Node is the target node ID for link/switch/rack kinds; -1 otherwise.
	Node int
	// Fraction is kind-specific: for KindLinkDegrade the share of
	// capacity *lost* (0,1]; for KindStraggler the share of capacity the
	// server *retains* (0,1); for KindSolveStraggler the modeled solve
	// cost multiplier (> 1); for KindMigrationFlake the per-attempt
	// transfer failure probability (0,1].
	Fraction float64
	// Record scopes KindSchedulerCrash within its epoch: the crash lands
	// after the epoch's journal record with this index has been written
	// (-1 = crash at the epoch boundary, before any record). Ignored by
	// every other kind.
	Record int
}

// end returns when the fault recovers; ok=false for permanent faults.
func (f Fault) end() (time.Duration, bool) {
	if f.Duration <= 0 {
		return 0, false
	}
	return f.At + f.Duration, true
}

// Schedule is an ordered fault sequence. Order is (At, insertion) — the
// sim engine's FIFO tie-break preserves insertion order for simultaneous
// faults, so a Schedule fully determines the mutation sequence.
type Schedule struct {
	Faults []Fault
}

// Sort orders faults by start time, keeping insertion order for ties.
func (s *Schedule) Sort() {
	sort.SliceStable(s.Faults, func(i, j int) bool {
		return s.Faults[i].At < s.Faults[j].At
	})
}

// Validate checks every fault against a topology before replay: targets in
// range, fractions in their legal intervals, non-negative times.
func (s *Schedule) Validate(tp *topology.Topology) error {
	for i, f := range s.Faults {
		if f.At < 0 {
			return fmt.Errorf("chaos: fault %d starts at negative time %v", i, f.At)
		}
		if f.Duration < 0 {
			return fmt.Errorf("chaos: fault %d has negative duration %v", i, f.Duration)
		}
		switch f.Kind {
		case KindServerCrash:
			if f.Server < 0 || f.Server >= tp.NumServers() {
				return fmt.Errorf("chaos: fault %d targets server %d outside [0, %d)", i, f.Server, tp.NumServers())
			}
		case KindStraggler:
			if f.Server < 0 || f.Server >= tp.NumServers() {
				return fmt.Errorf("chaos: fault %d targets server %d outside [0, %d)", i, f.Server, tp.NumServers())
			}
			if f.Fraction <= 0 || f.Fraction >= 1 {
				return fmt.Errorf("chaos: fault %d straggler fraction %v outside (0, 1)", i, f.Fraction)
			}
		case KindLinkCut, KindSwitchFail:
			n := tp.NodeByID(f.Node)
			if n == nil {
				return fmt.Errorf("chaos: fault %d targets unknown node %d", i, f.Node)
			}
			if n.Uplink == nil {
				return fmt.Errorf("chaos: fault %d targets node %d, which has no uplink", i, f.Node)
			}
		case KindLinkDegrade:
			n := tp.NodeByID(f.Node)
			if n == nil {
				return fmt.Errorf("chaos: fault %d targets unknown node %d", i, f.Node)
			}
			if n.Uplink == nil {
				return fmt.Errorf("chaos: fault %d targets node %d, which has no uplink", i, f.Node)
			}
			if f.Fraction <= 0 || f.Fraction > 1 {
				return fmt.Errorf("chaos: fault %d degrade fraction %v outside (0, 1]", i, f.Fraction)
			}
		case KindRackFault:
			n := tp.NodeByID(f.Node)
			if n == nil {
				return fmt.Errorf("chaos: fault %d targets unknown node %d", i, f.Node)
			}
			if n.Level != topology.LevelRack {
				return fmt.Errorf("chaos: fault %d targets node %d at level %v, want rack", i, f.Node, n.Level)
			}
		case KindSolveStraggler:
			if f.Fraction <= 1 {
				return fmt.Errorf("chaos: fault %d solve-straggler multiplier %v must exceed 1", i, f.Fraction)
			}
		case KindMigrationFlake:
			if f.Fraction <= 0 || f.Fraction > 1 {
				return fmt.Errorf("chaos: fault %d migration-flake probability %v outside (0, 1]", i, f.Fraction)
			}
		case KindSchedulerCrash:
			if f.Record < -1 {
				return fmt.Errorf("chaos: fault %d scheduler-crash record %d < -1", i, f.Record)
			}
		default:
			return fmt.Errorf("chaos: fault %d has unknown kind %d", i, int(f.Kind))
		}
	}
	return nil
}

// GenConfig parameterizes the schedule generator. All rates are
// per-component exponentials, the standard reliability model: a cluster of
// N servers with per-server MTTF m sees failures at aggregate rate N/m.
type GenConfig struct {
	// Seed drives every random draw. Same seed ⇒ same schedule.
	Seed int64
	// Horizon bounds fault *start* times; recoveries may land past it.
	Horizon time.Duration
	// MTTF is the per-server mean time to failure.
	MTTF time.Duration
	// MTTR is the mean outage duration (exponential).
	MTTR time.Duration
	// BurstSize is how many distinct servers an uncorrelated crash event
	// takes down simultaneously (≥1). Bursts model cascading or
	// maintenance-window failures that are simultaneous but *not* aligned
	// to a fault domain.
	BurstSize int
	// RackFaultFraction is the probability a failure event is a
	// correlated rack-wide outage instead of independent crashes.
	RackFaultFraction float64
	// StragglerFraction is the probability a failure event is a gray
	// failure (server throttled, not killed).
	StragglerFraction float64
	// LinkFaultFraction is the probability a failure event hits the
	// fabric (uplink cut or degrade) rather than a server.
	LinkFaultFraction float64
	// SolveStragglerFraction is the probability a failure event is a
	// control-plane gray failure: the scheduler's modeled solve cost is
	// inflated for the outage window, exercising the degradation ladder.
	SolveStragglerFraction float64
	// MigrationFlakeFraction is the probability a failure event makes
	// migration transfers flaky for the outage window, exercising the
	// retry/backoff policy.
	MigrationFlakeFraction float64
}

// Validate rejects configs the generator cannot honor.
func (c GenConfig) Validate() error {
	if c.Horizon <= 0 {
		return fmt.Errorf("chaos: non-positive horizon %v", c.Horizon)
	}
	if c.MTTF <= 0 {
		return fmt.Errorf("chaos: non-positive MTTF %v", c.MTTF)
	}
	if c.MTTR <= 0 {
		return fmt.Errorf("chaos: non-positive MTTR %v", c.MTTR)
	}
	if c.BurstSize < 1 {
		return fmt.Errorf("chaos: burst size %d < 1", c.BurstSize)
	}
	if c.RackFaultFraction < 0 || c.StragglerFraction < 0 || c.LinkFaultFraction < 0 ||
		c.SolveStragglerFraction < 0 || c.MigrationFlakeFraction < 0 {
		return fmt.Errorf("chaos: negative fault-mix fraction")
	}
	if s := c.RackFaultFraction + c.StragglerFraction + c.LinkFaultFraction +
		c.SolveStragglerFraction + c.MigrationFlakeFraction; s > 1 {
		return fmt.Errorf("chaos: fault-mix fractions sum to %v > 1", s)
	}
	return nil
}

// Generate draws a fault schedule for the topology from the config's seeded
// distributions. The result is fully determined by (cfg, topology shape):
// draws happen in a fixed order from one local generator, and targets are
// indexed by stable ids, so identical inputs yield identical schedules.
func Generate(tp *topology.Topology, cfg GenConfig) (Schedule, error) {
	if err := cfg.Validate(); err != nil {
		return Schedule{}, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	racks := tp.SubtreesAtLevel(topology.LevelRack)
	// Fabric targets: every non-server, non-root node (racks, pods).
	var fabric []*topology.Node
	for _, n := range tp.Nodes() {
		if n.Uplink != nil && !n.IsServer() {
			fabric = append(fabric, n)
		}
	}
	sort.Slice(fabric, func(i, j int) bool { return fabric[i].ID < fabric[j].ID })

	interMean := float64(cfg.MTTF) / float64(tp.NumServers())
	var s Schedule
	t := time.Duration(rng.ExpFloat64() * interMean)
	for t < cfg.Horizon {
		dur := time.Duration(rng.ExpFloat64() * float64(cfg.MTTR))
		if dur < time.Second {
			dur = time.Second // sub-second repairs are below epoch resolution
		}
		u := rng.Float64()
		switch {
		case u < cfg.RackFaultFraction && len(racks) > 0:
			s.Faults = append(s.Faults, Fault{
				Kind: KindRackFault, At: t, Duration: dur,
				Server: -1, Node: racks[rng.Intn(len(racks))].ID,
			})
		case u < cfg.RackFaultFraction+cfg.StragglerFraction:
			s.Faults = append(s.Faults, Fault{
				Kind: KindStraggler, At: t, Duration: dur,
				Server: rng.Intn(tp.NumServers()), Node: -1,
				Fraction: 0.25 + 0.5*rng.Float64(), // retain 25–75%
			})
		case u < cfg.RackFaultFraction+cfg.StragglerFraction+cfg.LinkFaultFraction && len(fabric) > 0:
			n := fabric[rng.Intn(len(fabric))]
			if rng.Float64() < 0.5 {
				s.Faults = append(s.Faults, Fault{
					Kind: KindSwitchFail, At: t, Duration: dur,
					Server: -1, Node: n.ID,
				})
			} else {
				s.Faults = append(s.Faults, Fault{
					Kind: KindLinkDegrade, At: t, Duration: dur,
					Server: -1, Node: n.ID,
					Fraction: 0.25 + 0.5*rng.Float64(), // lose 25–75%
				})
			}
		case u < cfg.RackFaultFraction+cfg.StragglerFraction+cfg.LinkFaultFraction+cfg.SolveStragglerFraction:
			// Control-plane gray failure: the scheduler runs 2–6× slow.
			s.Faults = append(s.Faults, Fault{
				Kind: KindSolveStraggler, At: t, Duration: dur,
				Server: -1, Node: -1,
				Fraction: 2 + 4*rng.Float64(),
			})
		case u < cfg.RackFaultFraction+cfg.StragglerFraction+cfg.LinkFaultFraction+cfg.SolveStragglerFraction+cfg.MigrationFlakeFraction:
			// Flaky transfer window: each attempt fails with 10–60% odds.
			s.Faults = append(s.Faults, Fault{
				Kind: KindMigrationFlake, At: t, Duration: dur,
				Server: -1, Node: -1,
				Fraction: 0.1 + 0.5*rng.Float64(),
			})
		default:
			// Independent crash burst: BurstSize distinct servers, all at
			// once, sharing one repair clock (a maintenance batch).
			burst := cfg.BurstSize
			if burst > tp.NumServers() {
				burst = tp.NumServers()
			}
			for _, id := range sampleDistinct(rng, tp.NumServers(), burst) {
				s.Faults = append(s.Faults, Fault{
					Kind: KindServerCrash, At: t, Duration: dur,
					Server: id, Node: -1,
				})
			}
		}
		t += time.Duration(rng.ExpFloat64() * interMean)
	}
	s.Sort()
	return s, nil
}

// sampleDistinct draws k distinct ints from [0, n) in ascending order via a
// partial Fisher–Yates over an index slice; draw order is deterministic.
func sampleDistinct(rng *rand.Rand, n, k int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + rng.Intn(n-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	out := idx[:k]
	sort.Ints(out)
	return out
}
