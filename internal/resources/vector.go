// Package resources provides the multi-dimensional resource vectors used
// throughout Goldilocks. Every container demand and every server capacity is
// a ⟨CPU, Memory, Network⟩ triple (paper §III-A); the package supplies the
// arithmetic, comparison, and fit-checking primitives that the partitioner,
// schedulers, and cluster simulator build on.
package resources

import (
	"fmt"
	"math"
)

// Dim identifies one resource dimension of a Vector.
type Dim int

// The three resource dimensions tracked by Goldilocks. CPU is expressed in
// percent-of-one-core units (so a 24-core server has CPU capacity 2400),
// memory in megabytes, and network in Mbps, matching Table II of the paper.
const (
	CPU Dim = iota
	Memory
	Network
	NumDims // number of dimensions; always last
)

// String returns the dimension's conventional name.
func (d Dim) String() string {
	switch d {
	case CPU:
		return "cpu"
	case Memory:
		return "memory"
	case Network:
		return "network"
	default:
		return fmt.Sprintf("dim(%d)", int(d))
	}
}

// Vector is a point in resource space: ⟨CPU %, Memory MB, Network Mbps⟩.
// The zero value is the empty demand.
type Vector [NumDims]float64

// New builds a vector from explicit CPU (percent of one core), memory (MB)
// and network (Mbps) components.
func New(cpu, memMB, netMbps float64) Vector {
	return Vector{CPU: cpu, Memory: memMB, Network: netMbps}
}

// Add returns v + w component-wise.
func (v Vector) Add(w Vector) Vector {
	for d := range v {
		v[d] += w[d]
	}
	return v
}

// Sub returns v − w component-wise. Components may go negative; callers that
// need clamping should use SubClamped.
func (v Vector) Sub(w Vector) Vector {
	for d := range v {
		v[d] -= w[d]
	}
	return v
}

// SubClamped returns max(v−w, 0) component-wise.
func (v Vector) SubClamped(w Vector) Vector {
	for d := range v {
		v[d] = math.Max(v[d]-w[d], 0)
	}
	return v
}

// Scale returns v multiplied by the scalar s.
func (v Vector) Scale(s float64) Vector {
	for d := range v {
		v[d] *= s
	}
	return v
}

// Fits reports whether demand v can be satisfied by capacity c in every
// dimension (Eq. 2 of the paper).
func (v Vector) Fits(c Vector) bool {
	for d := range v {
		if v[d] > c[d] {
			return false
		}
	}
	return true
}

// FitsWithin reports whether v fits in capacity c after c is scaled by the
// utilization target t (0 < t ≤ 1 usually; RC-Informed passes t > 1 on the
// CPU axis via OversubscribedCapacity instead).
func (v Vector) FitsWithin(c Vector, t float64) bool {
	return v.Fits(c.Scale(t))
}

// Dominates reports whether v ≥ w in every dimension.
func (v Vector) Dominates(w Vector) bool {
	return w.Fits(v)
}

// IsZero reports whether every component is exactly zero.
func (v Vector) IsZero() bool {
	return v == Vector{}
}

// Max returns the component-wise maximum of v and w.
func (v Vector) Max(w Vector) Vector {
	for d := range v {
		v[d] = math.Max(v[d], w[d])
	}
	return v
}

// Min returns the component-wise minimum of v and w.
func (v Vector) Min(w Vector) Vector {
	for d := range v {
		v[d] = math.Min(v[d], w[d])
	}
	return v
}

// Utilization returns the per-dimension ratio demand/capacity. Dimensions
// with zero capacity yield +Inf when demanded and 0 when not, so that a
// zero-capacity server can never look attractive to a scheduler.
func (v Vector) Utilization(capacity Vector) Vector {
	var u Vector
	for d := range v {
		switch {
		case capacity[d] > 0:
			u[d] = v[d] / capacity[d]
		case v[d] > 0:
			u[d] = math.Inf(1)
		}
	}
	return u
}

// MaxUtilization returns the dominant (largest) dimension of
// v.Utilization(capacity). This is the scalar "server utilization" used by
// the packing policies and the power model.
func (v Vector) MaxUtilization(capacity Vector) float64 {
	u := v.Utilization(capacity)
	m := u[0]
	for _, x := range u[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Sum collapses the vector to the sum of its components. It is only
// meaningful for normalized vectors but is useful as a tie-breaking scalar.
func (v Vector) Sum() float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s
}

// Normalize divides each component by the corresponding component of ref,
// producing a dimensionless vector. Zero ref components map to zero.
func (v Vector) Normalize(ref Vector) Vector {
	var n Vector
	for d := range v {
		if ref[d] > 0 {
			n[d] = v[d] / ref[d]
		}
	}
	return n
}

// String renders the vector in the paper's ⟨CPU, Mem, Net⟩ notation.
func (v Vector) String() string {
	return fmt.Sprintf("⟨%.1f%%cpu, %.0fMB, %.1fMbps⟩", v[CPU], v[Memory], v[Network])
}

// Sum aggregates a slice of vectors.
func Sum(vs []Vector) Vector {
	var total Vector
	for _, v := range vs {
		total = total.Add(v)
	}
	return total
}

// OversubscribedCapacity returns capacity c with the CPU axis inflated by
// factor (e.g. 1.25 for RC-Informed's 125% CPU oversubscription) while the
// other axes are left untouched.
func OversubscribedCapacity(c Vector, factor float64) Vector {
	c[CPU] *= factor
	return c
}

// PerDimScale returns v with each component multiplied by the matching
// component of caps — used to apply per-dimension utilization ceilings.
func (v Vector) PerDimScale(caps Vector) Vector {
	for d := range v {
		v[d] *= caps[d]
	}
	return v
}

// UtilizationCaps builds the per-dimension ceiling vector the packing
// policies use. The cap is a CPU phenomenon (the DVFS power knee); memory
// — resident sets have no knee — is bounded only by physical capacity, and
// network links keep a fixed 10% headroom against bursts (links have no
// power knee either; their cost shows up as congestion latency instead).
func UtilizationCaps(cpuCap float64) Vector {
	netCap := cpuCap
	if netCap < 0.9 {
		netCap = 0.9
	}
	return Vector{CPU: cpuCap, Memory: 1.0, Network: netCap}
}
