package resources

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewAndAccess(t *testing.T) {
	v := New(33, 4096, 24)
	if v[CPU] != 33 || v[Memory] != 4096 || v[Network] != 24 {
		t.Fatalf("New mis-assigned components: %v", v)
	}
}

func TestDimString(t *testing.T) {
	tests := []struct {
		d    Dim
		want string
	}{
		{CPU, "cpu"},
		{Memory, "memory"},
		{Network, "network"},
		{Dim(9), "dim(9)"},
	}
	for _, tt := range tests {
		if got := tt.d.String(); got != tt.want {
			t.Errorf("Dim(%d).String() = %q, want %q", tt.d, got, tt.want)
		}
	}
}

func TestAddSub(t *testing.T) {
	a := New(10, 20, 30)
	b := New(1, 2, 3)
	if got := a.Add(b); got != New(11, 22, 33) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != New(9, 18, 27) {
		t.Errorf("Sub = %v", got)
	}
	if got := b.Sub(a); got != New(-9, -18, -27) {
		t.Errorf("Sub may go negative, got %v", got)
	}
	if got := b.SubClamped(a); !got.IsZero() {
		t.Errorf("SubClamped should clamp at zero, got %v", got)
	}
}

func TestScale(t *testing.T) {
	v := New(100, 200, 300).Scale(0.5)
	if v != New(50, 100, 150) {
		t.Errorf("Scale(0.5) = %v", v)
	}
}

func TestFits(t *testing.T) {
	cap := New(2400, 65536, 1000)
	tests := []struct {
		name   string
		demand Vector
		want   bool
	}{
		{"zero demand fits", Vector{}, true},
		{"exact fit", cap, true},
		{"cpu overflow", New(2401, 0, 0), false},
		{"memory overflow", New(0, 65537, 0), false},
		{"network overflow", New(0, 0, 1001), false},
		{"comfortably inside", New(1200, 32768, 500), true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.demand.Fits(cap); got != tt.want {
				t.Errorf("Fits = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestFitsWithin(t *testing.T) {
	cap := New(1000, 1000, 1000)
	d := New(700, 700, 700)
	if !d.FitsWithin(cap, 0.70) {
		t.Error("demand at exactly the 70% target should fit")
	}
	if d.Add(New(1, 0, 0)).FitsWithin(cap, 0.70) {
		t.Error("demand above the 70% target must not fit")
	}
}

func TestUtilization(t *testing.T) {
	cap := New(200, 400, 0)
	d := New(100, 100, 5)
	u := d.Utilization(cap)
	if u[CPU] != 0.5 || u[Memory] != 0.25 {
		t.Errorf("Utilization = %v", u)
	}
	if !math.IsInf(u[Network], 1) {
		t.Errorf("demand against zero capacity should be +Inf, got %v", u[Network])
	}
	if z := (Vector{}).Utilization(cap); !z.IsZero() {
		t.Errorf("zero demand utilization should be zero, got %v", z)
	}
}

func TestMaxUtilization(t *testing.T) {
	cap := New(100, 100, 100)
	d := New(10, 80, 40)
	if got := d.MaxUtilization(cap); got != 0.8 {
		t.Errorf("MaxUtilization = %v, want 0.8 (memory-dominant)", got)
	}
}

func TestMaxMin(t *testing.T) {
	a := New(1, 5, 3)
	b := New(4, 2, 3)
	if got := a.Max(b); got != New(4, 5, 3) {
		t.Errorf("Max = %v", got)
	}
	if got := a.Min(b); got != New(1, 2, 3) {
		t.Errorf("Min = %v", got)
	}
}

func TestNormalize(t *testing.T) {
	v := New(50, 200, 0)
	ref := New(100, 400, 0)
	n := v.Normalize(ref)
	if n != New(0.5, 0.5, 0) {
		t.Errorf("Normalize = %v", n)
	}
}

func TestSumAggregate(t *testing.T) {
	vs := []Vector{New(1, 2, 3), New(4, 5, 6), New(7, 8, 9)}
	if got := Sum(vs); got != New(12, 15, 18) {
		t.Errorf("Sum = %v", got)
	}
	if got := Sum(nil); !got.IsZero() {
		t.Errorf("Sum(nil) = %v, want zero", got)
	}
}

func TestOversubscribedCapacity(t *testing.T) {
	c := New(1000, 500, 200)
	o := OversubscribedCapacity(c, 1.25)
	if o[CPU] != 1250 {
		t.Errorf("CPU should be oversubscribed to 1250, got %v", o[CPU])
	}
	if o[Memory] != 500 || o[Network] != 200 {
		t.Errorf("memory/network must be untouched, got %v", o)
	}
}

func TestDominates(t *testing.T) {
	big := New(10, 10, 10)
	small := New(5, 10, 1)
	if !big.Dominates(small) {
		t.Error("big should dominate small")
	}
	if small.Dominates(big) {
		t.Error("small must not dominate big")
	}
	mixed := New(20, 1, 1)
	if big.Dominates(mixed) || mixed.Dominates(big) {
		t.Error("incomparable vectors must not dominate each other")
	}
}

// positive reshapes arbitrary quick-generated floats into small positive
// finite values so the algebraic properties are tested on meaningful inputs.
func positive(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 1
	}
	return math.Mod(math.Abs(x), 1e6)
}

func posVec(a, b, c float64) Vector {
	return New(positive(a), positive(b), positive(c))
}

func TestPropertyAddCommutative(t *testing.T) {
	f := func(a1, a2, a3, b1, b2, b3 float64) bool {
		v, w := posVec(a1, a2, a3), posVec(b1, b2, b3)
		return v.Add(w) == w.Add(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyAddSubRoundTrip(t *testing.T) {
	f := func(a1, a2, a3, b1, b2, b3 float64) bool {
		v, w := posVec(a1, a2, a3), posVec(b1, b2, b3)
		got := v.Add(w).Sub(w)
		for d := range got {
			if math.Abs(got[d]-v[d]) > 1e-6*(1+math.Abs(v[d])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyFitsTransitivity(t *testing.T) {
	// v ≤ w and w ≤ x implies v ≤ x.
	f := func(a1, a2, a3, b1, b2, b3, c1, c2, c3 float64) bool {
		v, w, x := posVec(a1, a2, a3), posVec(b1, b2, b3), posVec(c1, c2, c3)
		if v.Fits(w) && w.Fits(x) {
			return v.Fits(x)
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertySumFitsImpliesEachFits(t *testing.T) {
	// If v+w fits capacity c, then each of v, w individually fits c.
	f := func(a1, a2, a3, b1, b2, b3, c1, c2, c3 float64) bool {
		v, w, c := posVec(a1, a2, a3), posVec(b1, b2, b3), posVec(c1, c2, c3)
		if v.Add(w).Fits(c) {
			return v.Fits(c) && w.Fits(c)
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyScaleMonotone(t *testing.T) {
	f := func(a1, a2, a3 float64, sRaw float64) bool {
		v := posVec(a1, a2, a3)
		s := math.Mod(math.Abs(positive(sRaw)), 1) // s in [0,1)
		return v.Scale(s).Fits(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyMaxUtilizationScales(t *testing.T) {
	// Doubling demand doubles max utilization (capacity positive).
	f := func(a1, a2, a3 float64) bool {
		v := posVec(a1, a2, a3)
		cap := New(1000, 1000, 1000)
		u1 := v.MaxUtilization(cap)
		u2 := v.Scale(2).MaxUtilization(cap)
		return math.Abs(u2-2*u1) < 1e-9*(1+u2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVectorString(t *testing.T) {
	s := New(33, 4096, 24).String()
	if s == "" {
		t.Fatal("String() should not be empty")
	}
}

func TestVectorSumComponents(t *testing.T) {
	if got := New(1, 2, 3).Sum(); got != 6 {
		t.Fatalf("Sum = %v", got)
	}
}

func TestPerDimScale(t *testing.T) {
	v := New(100, 200, 300).PerDimScale(New(0.5, 1.0, 0.1))
	if v != New(50, 200, 30) {
		t.Fatalf("PerDimScale = %v", v)
	}
}

func TestUtilizationCaps(t *testing.T) {
	caps := UtilizationCaps(0.70)
	if caps[CPU] != 0.70 {
		t.Fatalf("CPU cap = %v", caps[CPU])
	}
	if caps[Memory] != 1.0 {
		t.Fatalf("memory cap = %v, want 1.0 (no knee)", caps[Memory])
	}
	if caps[Network] != 0.90 {
		t.Fatalf("network cap = %v, want the 0.9 headroom floor", caps[Network])
	}
	if got := UtilizationCaps(0.95)[Network]; got != 0.95 {
		t.Fatalf("network cap at 0.95 = %v (cap above floor passes through)", got)
	}
}
