package vc_test

// go test -fuzz target for the Virtual Cluster placement invariants on
// randomly failed topologies. The fuzzer decodes raw bytes into a 2-level
// leaf-spine fabric (shape, NIC and uplink speeds), a failure pattern
// (crashed servers, degraded rack uplinks) and a group set, then checks
// that vc.Place
//
//  1. never assigns a container to a failed server,
//  2. keeps every server's load within the PEE-scaled capacity,
//  3. reserves on every boundary exactly the Eq. 4/5 terms
//     R = min(Σ_inside B, Σ_outside-intra B + Σ_inter B) — recomputed
//     independently here from the returned assignment — and never more
//     than the link's (possibly degraded) capacity, and
//  4. releases every reservation when a group set is unplaceable.
//
// Seed corpora live in testdata/fuzz/FuzzVCPlaceAsymmetric/ and run as
// ordinary test cases under plain `go test`; `make fuzz-smoke` gives the
// target a short budget of generated inputs.

import (
	"errors"
	"math"
	"testing"

	"goldilocks/internal/power"
	"goldilocks/internal/resources"
	"goldilocks/internal/topology"
	"goldilocks/internal/vc"
)

// fuzzByteAt reads raw cyclically, so short inputs still describe full
// scenarios and every byte the fuzzer mutates stays meaningful.
func fuzzByteAt(raw []byte, i int) byte {
	if len(raw) == 0 {
		return 0
	}
	return raw[i%len(raw)]
}

// buildFuzzTopology decodes raw into a failed 2-level leaf-spine fabric.
func buildFuzzTopology(t *testing.T, raw []byte) *topology.Topology {
	t.Helper()
	leaves := 2 + int(fuzzByteAt(raw, 0))%4  // 2–5 racks
	perLeaf := 1 + int(fuzzByteAt(raw, 1))%3 // 1–3 servers per rack
	uplink := 50 + 4*float64(fuzzByteAt(raw, 2))
	nic := 50 + 2*float64(fuzzByteAt(raw, 3))
	cfg := topology.Config{
		ServerCapacity: resources.New(100, 100, 100),
		ServerModel:    power.TestbedOpteron,
		ServerLinkMbps: nic,
	}
	tp, err := topology.NewLeafSpine(leaves, perLeaf, 1, uplink, power.TestbedHPE3800, power.TestbedHPE3800, cfg)
	if err != nil {
		t.Fatalf("leaf-spine %d×%d: %v", leaves, perLeaf, err)
	}

	// Crash roughly a quarter of the servers, but keep at least one alive.
	failed := 0
	for s := 0; s < tp.NumServers(); s++ {
		if fuzzByteAt(raw, 4+s)%4 == 0 {
			if err := tp.FailServer(s); err != nil {
				t.Fatal(err)
			}
			failed++
		}
	}
	if failed == tp.NumServers() {
		if err := tp.RecoverServer(0); err != nil {
			t.Fatal(err)
		}
	}
	// Degrade some rack uplinks so the surviving fabric is asymmetric in
	// bandwidth, not just in server capacity.
	for ri, rack := range tp.SubtreesAtLevel(topology.LevelRack) {
		switch fuzzByteAt(raw, 20+ri) % 4 {
		case 1:
			if err := tp.FailUplinkFraction(rack, 0.5); err != nil {
				t.Fatal(err)
			}
		case 2:
			if err := tp.FailUplinkFraction(rack, 0.9); err != nil {
				t.Fatal(err)
			}
		}
	}
	return tp
}

// buildFuzzGroups decodes raw into numC containers split into groups whose
// every member fits an undegraded server at any target ≥ 0.5.
func buildFuzzGroups(raw []byte, numC int) []vc.Group {
	var groups []vc.Group
	idx := 0
	for gi := 0; idx < numC; gi++ {
		size := 1 + int(fuzzByteAt(raw, 31+gi))%4
		if idx+size > numC {
			size = numC - idx
		}
		g := vc.Group{ID: gi}
		for k := 0; k < size; k++ {
			c := idx + k
			d := func(j int) float64 { return 1 + float64(fuzzByteAt(raw, 40+3*c+j)%50) }
			total := float64(fuzzByteAt(raw, 90+c) % 40)
			inter := total * float64(fuzzByteAt(raw, 120+c)%101) / 100
			g.Containers = append(g.Containers, c)
			g.Demands = append(g.Demands, resources.New(d(0), d(1), d(2)))
			g.TotalMbps = append(g.TotalMbps, total)
			g.InterMbps = append(g.InterMbps, inter)
		}
		groups = append(groups, g)
		idx += size
	}
	return groups
}

func FuzzVCPlaceAsymmetric(f *testing.F) {
	f.Add([]byte("goldilocks-vc"))
	f.Add([]byte{0x03, 0x02, 0x40, 0x80, 0x04, 0x00, 0x01, 0x02, 0x03, 0x05, 0x08, 0x0d})
	f.Add([]byte{0xff, 0xee, 0xdd, 0xcc, 0xbb, 0xaa, 0x99, 0x88})
	f.Fuzz(func(t *testing.T, raw []byte) {
		tp := buildFuzzTopology(t, raw)
		numC := 1 + int(fuzzByteAt(raw, 30))%12
		groups := buildFuzzGroups(raw, numC)
		target := 0.5 + float64(fuzzByteAt(raw, 130)%50)/100

		pl, err := vc.Place(tp, numC, groups, target)
		if err != nil {
			if !errors.Is(err, vc.ErrUnplaceable) {
				t.Fatalf("unexpected error class: %v", err)
			}
			// Invariant 4: failure must release every reservation.
			for _, nd := range tp.Nodes() {
				if l := nd.Uplink; l != nil && math.Abs(l.Residual()-l.CapacityMbps) > 1e-6 {
					t.Fatalf("node %d uplink holds %v Mbps after a failed Place",
						nd.ID, l.CapacityMbps-l.Residual())
				}
			}
			return
		}
		defer pl.Release()

		// Invariants 1–2: everyone placed on a live server within capacity.
		loads := make([]resources.Vector, tp.NumServers())
		for _, g := range groups {
			for m, c := range g.Containers {
				s := pl.ServerOf[c]
				if s < 0 || s >= tp.NumServers() {
					t.Fatalf("container %d unplaced (server %d)", c, s)
				}
				if tp.ServerFailed(s) {
					t.Fatalf("container %d placed on failed server %d", c, s)
				}
				loads[s] = loads[s].Add(g.Demands[m])
			}
		}
		ceil := resources.UtilizationCaps(target)
		for s, load := range loads {
			if !load.Fits(tp.Capacity[s].PerDimScale(ceil).Scale(1 + 1e-9)) {
				t.Fatalf("server %d load %v exceeds PEE-scaled capacity %v",
					s, load, tp.Capacity[s].PerDimScale(ceil))
			}
		}

		// Invariant 3: recompute Eq. 4/5 per group and per boundary. For a
		// boundary holding a strict subset of a group the reservation is
		// exactly R = min(inB, (totalB−inB)+interB); a boundary holding the
		// whole group reserves either min(totalB, interB) (it lies at or
		// below the chosen subtree) or nothing (above it) — so the committed
		// amount must fall between the sums of the unambiguous terms and
		// the sums including every whole-group boundary.
		nodes := tp.Nodes()
		expectMin := make(map[*topology.Link]float64)
		expectMax := make(map[*topology.Link]float64)
		for _, g := range groups {
			totalB, interB := 0.0, 0.0
			for m := range g.Containers {
				totalB += g.TotalMbps[m]
				interB += g.InterMbps[m]
			}
			for _, nd := range nodes {
				if nd.Uplink == nil {
					continue
				}
				under := make(map[int]bool, len(nd.ServerIDs))
				for _, s := range nd.ServerIDs {
					under[s] = true
				}
				inB := 0.0
				for m, c := range g.Containers {
					if under[pl.ServerOf[c]] {
						inB += g.TotalMbps[m]
					}
				}
				if inB <= 0 {
					continue
				}
				r := math.Min(inB, (totalB-inB)+interB)
				if r <= 0 {
					continue
				}
				if inB < totalB {
					expectMin[nd.Uplink] += r
					expectMax[nd.Uplink] += r
				} else {
					expectMax[nd.Uplink] += r
				}
			}
		}
		for _, nd := range nodes {
			l := nd.Uplink
			if l == nil {
				continue
			}
			got := pl.Reserved[l]
			if got < expectMin[l]-1e-6 || got > expectMax[l]+1e-6 {
				t.Fatalf("node %d uplink reserves %v Mbps, want within Eq. 4/5 bounds [%v, %v]",
					nd.ID, got, expectMin[l], expectMax[l])
			}
			if got > l.CapacityMbps+1e-6 {
				t.Fatalf("node %d uplink reserves %v Mbps over its %v Mbps capacity",
					nd.ID, got, l.CapacityMbps)
			}
			if l.Residual() < -1e-9 {
				t.Fatalf("node %d uplink residual %v is negative", nd.ID, l.Residual())
			}
		}
	})
}
