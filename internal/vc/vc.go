// Package vc implements the paper's asymmetric-topology placement (§IV):
// each container group becomes a Virtual Cluster (the Oktopus abstraction)
// whose containers hang off one virtual switch. A group is placed on the
// smallest left-most subtree whose heterogeneous servers can absorb its
// members and whose outbound links can absorb the bandwidth reservation of
// Eqs. 4–5:
//
//	R = min(Σ_{q∈inside} B_q,  Σ_{r∈intra-outside} B_r + Σ_{s∈inter} B_s)
//
// — the reservation on a boundary never exceeds the total bandwidth of the
// containers inside it, nor the total traffic that actually wants to cross
// it (intra-group traffic to members placed outside plus, conservatively,
// all inter-group traffic).
package vc

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"goldilocks/internal/resources"
	"goldilocks/internal/telemetry"
	"goldilocks/internal/topology"
)

// ErrUnplaceable is returned when a group fits no subtree, even the root.
var ErrUnplaceable = errors.New("vc: group cannot be placed")

// Group is one Virtual Cluster: a set of containers with their demands and
// bandwidth requirements. TotalMbps[i] is B_i, the container's total
// traffic (intra + inter); InterMbps[i] is the share of B_i destined to
// other groups.
type Group struct {
	ID         int
	Containers []int
	Demands    []resources.Vector
	TotalMbps  []float64
	InterMbps  []float64
}

// totalBandwidth returns ΣB_i over the group.
func (g Group) totalBandwidth() float64 {
	s := 0.0
	for _, b := range g.TotalMbps {
		s += b
	}
	return s
}

// interBandwidth returns the Σ over members of inter-group traffic.
func (g Group) interBandwidth() float64 {
	s := 0.0
	for _, b := range g.InterMbps {
		s += b
	}
	return s
}

// Placement is the result of Place.
type Placement struct {
	// ServerOf maps global container index → server id (-1 if the index
	// was not part of any group).
	ServerOf []int
	// Reserved lists the bandwidth reservations committed on links, so
	// callers can release them when the epoch ends.
	Reserved map[*topology.Link]float64
}

// Release returns all committed reservations to the topology.
func (p *Placement) Release() {
	// Each link's release only adds back to that link's own residual.
	//lint:ignore maporder per-link releases are independent; any order restores the same residuals
	for l, mbps := range p.Reserved {
		l.Release(mbps)
	}
	p.Reserved = map[*topology.Link]float64{}
}

// Place assigns every group to servers of the (possibly asymmetric,
// heterogeneous) topology. Groups are processed in order; each lands on
// the smallest left-most subtree that satisfies both server-side resources
// (per-server utilization ≤ targetUtil) and outbound-bandwidth
// reservations on every boundary it spans. numContainers sizes the
// returned ServerOf slice.
func Place(topo *topology.Topology, numContainers int, groups []Group, targetUtil float64) (*Placement, error) {
	return PlaceT(topo, numContainers, groups, targetUtil, "", nil, nil)
}

// PlaceT is Place with telemetry: the VC subtree search hangs a span per
// group under parent, and every candidate subtree the walk rejects — a
// member that fits no server, or an Eq. 4/5 boundary whose residual cannot
// absorb the reservation — lands in the session's audit log under policy,
// joined to the group's containers by group id. sess and parent may be
// nil independently.
func PlaceT(topo *topology.Topology, numContainers int, groups []Group, targetUtil float64, policy string, sess *telemetry.Session, parent *telemetry.Span) (*Placement, error) {
	if targetUtil <= 0 || targetUtil > 1 {
		return nil, fmt.Errorf("vc: target utilization %v outside (0, 1]", targetUtil)
	}
	span := parent.Child("vc-place")
	span.SetInt("groups", len(groups))
	defer span.End()
	pl := &Placement{
		ServerOf: make([]int, numContainers),
		Reserved: make(map[*topology.Link]float64),
	}
	for i := range pl.ServerOf {
		pl.ServerOf[i] = -1
	}
	used := make([]resources.Vector, topo.NumServers())

	// Candidate subtrees smallest-first, left-most within a level: racks,
	// pods, then the root.
	candidates := topo.SubtreesAtLevel(topology.LevelRack)
	candidates = append(candidates, topo.SubtreesAtLevel(topology.LevelPod)...)
	candidates = append(candidates, topo.Root)

	explain := sess.Auditing()
	for _, g := range groups {
		if err := validateGroup(g, numContainers); err != nil {
			return nil, err
		}
		gspan := span.Child("group")
		gspan.SetInt("group", g.ID)
		gspan.SetInt("containers", len(g.Containers))
		gspan.SetFloat("bandwidth_mbps", g.totalBandwidth())
		var rejected []telemetry.Candidate
		placed := false
		for _, sub := range candidates {
			ok, reason := tryPlaceGroup(topo, sub, g, targetUtil, used, pl, explain)
			if ok {
				if explain {
					sess.Decide(telemetry.Decision{
						Policy: policy, Container: -1, Group: g.ID,
						Action: telemetry.ActionGroupPlaced, Server: -1, From: -1,
						Detail:     fmt.Sprintf("placed under %s (%d containers, %.0f Mbps)", nodeName(sub), len(g.Containers), g.totalBandwidth()),
						Candidates: rejected,
					})
				}
				gspan.SetStr("subtree", nodeName(sub))
				placed = true
				break
			}
			if explain {
				rejected = append(rejected, telemetry.Candidate{Subtree: nodeName(sub), Outcome: reason})
			}
		}
		gspan.End()
		if !placed {
			if explain {
				sess.Decide(telemetry.Decision{
					Policy: policy, Container: -1, Group: g.ID,
					Action: telemetry.ActionGroupRejected, Server: -1, From: -1,
					Detail:     "no subtree can host the group",
					Candidates: rejected,
				})
			}
			pl.Release()
			return nil, fmt.Errorf("%w: group %d (%d containers, %v Mbps)",
				ErrUnplaceable, g.ID, len(g.Containers), g.totalBandwidth())
		}
	}
	return pl, nil
}

// nodeName renders a topology node for audit records, e.g. "rack-3".
func nodeName(n *topology.Node) string {
	return fmt.Sprintf("%s-%d", n.Level, n.ID)
}

func validateGroup(g Group, numContainers int) error {
	if len(g.Demands) != len(g.Containers) || len(g.TotalMbps) != len(g.Containers) ||
		len(g.InterMbps) != len(g.Containers) {
		return fmt.Errorf("vc: group %d has inconsistent slice lengths", g.ID)
	}
	for _, c := range g.Containers {
		if c < 0 || c >= numContainers {
			return fmt.Errorf("vc: group %d references container %d outside [0, %d)", g.ID, c, numContainers)
		}
	}
	return nil
}

// tryPlaceGroup attempts to place the whole group under subtree `sub`.
// On success it commits server loads and bandwidth reservations and
// returns true; on failure it leaves all state untouched. When explain is
// set, a failure also returns the audit reason (which server fit or
// Eq. 4/5 residual check failed); otherwise the reason is "".
func tryPlaceGroup(topo *topology.Topology, sub *topology.Node, g Group, targetUtil float64, used []resources.Vector, pl *Placement, explain bool) (bool, string) {
	// Phase 1: fit containers onto servers (first-fit decreasing over the
	// subtree's servers, which are already in left-most order).
	order := make([]int, len(g.Containers))
	for i := range order {
		order[i] = i
	}
	ref := topo.AverageCapacity()
	sort.SliceStable(order, func(a, b int) bool {
		return g.Demands[order[a]].Normalize(ref).Sum() > g.Demands[order[b]].Normalize(ref).Sum()
	})

	ceil := resources.UtilizationCaps(targetUtil)
	// Member→server assignment is dense (every member gets a server or the
	// whole attempt fails), so a slice keeps later commit loops ordered by
	// member index instead of map order.
	assignment := make([]int, len(g.Containers))
	tentative := make(map[int]resources.Vector) // server → extra load
	for _, m := range order {
		placedOn := -1
		for _, s := range sub.ServerIDs {
			load := used[s].Add(tentative[s]).Add(g.Demands[m])
			if load.Fits(topo.Capacity[s].PerDimScale(ceil)) {
				placedOn = s
				break
			}
		}
		if placedOn < 0 {
			if explain {
				return false, fmt.Sprintf("member %d (demand %v) fits none of the %d servers at %.0f%% ceiling",
					g.Containers[m], g.Demands[m], len(sub.ServerIDs), targetUtil*100)
			}
			return false, ""
		}
		assignment[m] = placedOn
		tentative[placedOn] = tentative[placedOn].Add(g.Demands[m])
	}

	// Phase 2: bandwidth reservations on every boundary the group spans.
	// For each node under (and including) sub whose subtree contains some
	// group members, reserve Eq. 4/5's R on its uplink.
	reservations, fail := computeReservations(topo, sub, g, assignment)
	if fail != nil {
		if explain {
			return false, fmt.Sprintf("Eq. 4/5 reservation %.0f Mbps exceeds residual %.0f Mbps on uplink of %s",
				fail.need, fail.residual, nodeName(fail.node))
		}
		return false, ""
	}

	// Commit.
	for s, extra := range tentative {
		used[s] = used[s].Add(extra)
	}
	for m, s := range assignment {
		pl.ServerOf[g.Containers[m]] = s
	}
	// Each link appears once in `reservations`, and Reserve only
	// subtracts from that link's own residual, so the commit is
	// order-insensitive.
	//lint:ignore maporder per-link commits are independent; no order can change the final residuals
	for l, r := range reservations {
		if !l.Reserve(r) {
			// computeReservations already checked residuals; a failed
			// commit means concurrent mutation — treat as a bug.
			panic("vc: reservation commit failed after residual check")
		}
		pl.Reserved[l] += r
	}
	return true, ""
}

// resFailure identifies the boundary whose residual bandwidth could not
// absorb the group's Eq. 4/5 reservation.
type resFailure struct {
	node     *topology.Node
	need     float64
	residual float64
}

// computeReservations derives the per-uplink reservation for the group
// given its member→server assignment, checking residual capacity. It
// covers the uplink of sub itself and of every descendant subtree that
// holds a strict subset of the group (rack boundaries when the group spans
// racks inside a pod, and the server NIC links).
func computeReservations(topo *topology.Topology, sub *topology.Node, g Group, assignment []int) (map[*topology.Link]float64, *resFailure) {
	totalB := g.totalBandwidth()
	interB := g.interBandwidth()

	// Aggregate member bandwidth per node on the path from each member's
	// server up to (and including) sub. `order` records first-seen node
	// order — a deterministic walk of the deterministic assignment — so the
	// boundary check below visits nodes reproducibly and the *first*
	// failing boundary reported to the audit log is always the same one.
	insideB := make(map[*topology.Node]float64)
	var order []*topology.Node
	for m, server := range assignment {
		n := topo.ServerNode[server]
		for {
			if _, seen := insideB[n]; !seen {
				order = append(order, n)
			}
			insideB[n] += g.TotalMbps[m]
			if n == sub {
				break
			}
			n = n.Parent
		}
	}

	res := make(map[*topology.Link]float64, len(insideB))
	for _, n := range order {
		if n.Uplink == nil {
			continue // root: no outbound boundary
		}
		inB := insideB[n]
		// Traffic wanting to cross this boundary: intra-group traffic to
		// members outside n, plus (conservatively, Eq. 5) the whole
		// inter-group traffic.
		outB := (totalB - inB) + interB
		r := math.Min(inB, outB)
		if r <= 0 {
			continue
		}
		if r > n.Uplink.Residual()+1e-9 {
			return nil, &resFailure{node: n, need: r, residual: n.Uplink.Residual()}
		}
		res[n.Uplink] = r
	}
	return res, nil
}
