package vc

import (
	"errors"
	"testing"

	"goldilocks/internal/power"
	"goldilocks/internal/resources"
	"goldilocks/internal/topology"
)

func fatTree4(t *testing.T) *topology.Topology {
	t.Helper()
	cfg := topology.Config{
		ServerCapacity: resources.New(1000, 10000, 1000),
		ServerModel:    power.Dell2018,
		ServerLinkMbps: 1000,
	}
	tp, err := topology.NewFatTree(4, power.Wedge, power.Wedge, power.Wedge, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

// mkGroup builds a group of n identical containers starting at container
// index base.
func mkGroup(id, base, n int, demand resources.Vector, totalMbps, interMbps float64) Group {
	g := Group{ID: id}
	for i := 0; i < n; i++ {
		g.Containers = append(g.Containers, base+i)
		g.Demands = append(g.Demands, demand)
		g.TotalMbps = append(g.TotalMbps, totalMbps)
		g.InterMbps = append(g.InterMbps, interMbps)
	}
	return g
}

func TestPlaceSingleGroupInOneRack(t *testing.T) {
	tp := fatTree4(t)
	// 2 containers of 300 CPU each fit one rack's two servers at 70%
	// (each server holds one: 300 ≤ 700).
	g := mkGroup(0, 0, 2, resources.New(300, 100, 50), 50, 10)
	pl, err := Place(tp, 2, []Group{g}, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	s0, s1 := pl.ServerOf[0], pl.ServerOf[1]
	if s0 < 0 || s1 < 0 {
		t.Fatal("containers unplaced")
	}
	// Both must land in the left-most rack (servers 0 and 1).
	if tp.HopDistance(s0, s1) > 2 {
		t.Fatalf("group split across racks: servers %d, %d", s0, s1)
	}
}

func TestPlaceRespectsTargetUtil(t *testing.T) {
	tp := fatTree4(t)
	// Each server: 1000 CPU; at 70% one server holds at most 700.
	// 4 containers of 400 CPU → 2 racks worth (one per server pair).
	g := mkGroup(0, 0, 4, resources.New(400, 10, 10), 10, 0)
	pl, err := Place(tp, 4, []Group{g}, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	used := make(map[int]float64)
	for _, s := range pl.ServerOf {
		used[s] += 400
	}
	for s, u := range used {
		if u > 700 {
			t.Fatalf("server %d loaded to %v CPU, above the 70%% knee", s, u)
		}
	}
}

func TestPlaceFallsBackToLargerSubtree(t *testing.T) {
	tp := fatTree4(t)
	// 6 containers of 500 CPU: each server holds one (500 ≤ 700), a rack
	// holds 2, so the group needs a pod (4) — no: 6 > 4 → needs root.
	g := mkGroup(0, 0, 6, resources.New(500, 10, 10), 10, 0)
	pl, err := Place(tp, 6, []Group{g}, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	servers := make(map[int]bool)
	for _, s := range pl.ServerOf {
		if s < 0 {
			t.Fatal("unplaced container")
		}
		servers[s] = true
	}
	if len(servers) != 6 {
		t.Fatalf("used %d servers, want 6", len(servers))
	}
}

func TestPlaceHeterogeneousServers(t *testing.T) {
	tp := fatTree4(t)
	// Shrink server 0 so the big container must skip it.
	tp.Capacity[0] = resources.New(100, 10000, 1000)
	g := mkGroup(0, 0, 1, resources.New(600, 10, 10), 10, 0)
	pl, err := Place(tp, 1, []Group{g}, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if pl.ServerOf[0] == 0 {
		t.Fatal("container placed on a server too small for it")
	}
}

func TestPlaceBandwidthReservation(t *testing.T) {
	tp := fatTree4(t)
	g := mkGroup(0, 0, 2, resources.New(300, 10, 10), 400, 100)
	pl, err := Place(tp, 2, []Group{g}, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.Reserved) == 0 {
		t.Fatal("no bandwidth reservations recorded")
	}
	// Both containers fit one server (600 ≤ 700 CPU), so every boundary
	// around them only carries the inter-group traffic:
	// R = min(ΣB inside = 800, intra-out 0 + inter 200) = 200.
	if pl.ServerOf[0] != pl.ServerOf[1] {
		t.Fatalf("expected co-location, got servers %d and %d", pl.ServerOf[0], pl.ServerOf[1])
	}
	nic := tp.ServerNode[pl.ServerOf[0]].Uplink
	if got := pl.Reserved[nic]; got != 200 {
		t.Fatalf("NIC reservation = %v, want 200 (Eq. 4 min)", got)
	}
	rack := tp.ServerNode[pl.ServerOf[0]].Parent
	if got := pl.Reserved[rack.Uplink]; got != 200 {
		t.Fatalf("rack uplink reservation = %v, want 200 (inter-group only)", got)
	}
}

func TestPlaceAvoidsBandwidthStarvedRack(t *testing.T) {
	tp := fatTree4(t)
	// Kill rack 0's uplink: a group with inter-group traffic cannot
	// reserve there and must move to rack 1.
	rack0 := tp.SubtreesAtLevel(topology.LevelRack)[0]
	if err := tp.FailUplinkFraction(rack0, 1.0); err != nil {
		t.Fatal(err)
	}
	g := mkGroup(0, 0, 2, resources.New(300, 10, 10), 100, 50)
	pl, err := Place(tp, 2, []Group{g}, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range pl.ServerOf {
		for _, inRack0 := range rack0.ServerIDs {
			if s == inRack0 {
				t.Fatalf("container placed in bandwidth-dead rack (server %d)", s)
			}
		}
	}
}

func TestPlaceSequentialGroupsShareResidual(t *testing.T) {
	tp := fatTree4(t)
	// Two groups that each fit a rack: they must land on different
	// servers without overcommitting anything.
	g1 := mkGroup(0, 0, 2, resources.New(600, 10, 10), 100, 20)
	g2 := mkGroup(1, 2, 2, resources.New(600, 10, 10), 100, 20)
	pl, err := Place(tp, 4, []Group{g1, g2}, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]int)
	for _, s := range pl.ServerOf {
		seen[s]++
	}
	for s, n := range seen {
		if n > 1 {
			t.Fatalf("server %d hosts %d containers of 600 CPU (cap 700)", s, n)
		}
	}
}

func TestPlaceUnplaceable(t *testing.T) {
	tp := fatTree4(t)
	// One container bigger than any server at 70%.
	g := mkGroup(0, 0, 1, resources.New(900, 10, 10), 10, 0)
	_, err := Place(tp, 1, []Group{g}, 0.7)
	if !errors.Is(err, ErrUnplaceable) {
		t.Fatalf("err = %v, want ErrUnplaceable", err)
	}
}

func TestPlaceReleasesOnFailure(t *testing.T) {
	tp := fatTree4(t)
	g1 := mkGroup(0, 0, 1, resources.New(500, 10, 10), 300, 50)
	gBad := mkGroup(1, 1, 1, resources.New(900, 10, 10), 10, 0)
	_, err := Place(tp, 2, []Group{g1, gBad}, 0.7)
	if err == nil {
		t.Fatal("expected failure")
	}
	for _, n := range tp.Nodes() {
		if n.Uplink != nil && n.Uplink.ReservedMbps != 0 {
			t.Fatalf("reservation leaked on node %d: %v Mbps", n.ID, n.Uplink.ReservedMbps)
		}
	}
}

func TestPlaceRelease(t *testing.T) {
	tp := fatTree4(t)
	g := mkGroup(0, 0, 2, resources.New(300, 10, 10), 200, 40)
	pl, err := Place(tp, 2, []Group{g}, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	pl.Release()
	for _, n := range tp.Nodes() {
		if n.Uplink != nil && n.Uplink.ReservedMbps != 0 {
			t.Fatalf("reservation remains after Release on node %d", n.ID)
		}
	}
}

func TestPlaceValidation(t *testing.T) {
	tp := fatTree4(t)
	if _, err := Place(tp, 1, nil, 0); err == nil {
		t.Fatal("target 0 must be rejected")
	}
	bad := Group{ID: 0, Containers: []int{0}, Demands: nil, TotalMbps: []float64{1}, InterMbps: []float64{0}}
	if _, err := Place(tp, 1, []Group{bad}, 0.7); err == nil {
		t.Fatal("inconsistent group must be rejected")
	}
	oob := mkGroup(0, 5, 1, resources.New(1, 1, 1), 1, 0)
	if _, err := Place(tp, 2, []Group{oob}, 0.7); err == nil {
		t.Fatal("out-of-range container index must be rejected")
	}
}
