module goldilocks

go 1.22
